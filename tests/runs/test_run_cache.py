"""Tests for the content-addressed result cache: hit/miss/eviction/dedup."""

import json
import os
import threading
import time

import pytest

from repro.campaign import build_cells_campaign, run_campaign
from repro.modelcheck.grid import run_unit as verify_worker
from repro.runs import ResultCache, SimulateSpec, cache_key


def _boom_worker(unit):
    raise RuntimeError("boom")


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = cache_key(SimulateSpec())
        assert cache.get(key) is None
        assert key not in cache
        cache.put(key, {"payload": {"x": 1}})
        assert key in cache
        assert cache.get(key) == {"payload": {"x": 1}}

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key(SimulateSpec())
        path = cache.put(key, {"payload": 1})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert cache.get(key) is None
        assert key not in cache

    def test_put_is_deterministic_bytes(self, tmp_path):
        """Two puts of the same document write byte-identical files."""
        cache = ResultCache(str(tmp_path))
        document = {"payload": {"b": 2, "a": [1, 2]}, "spec": {"kind": "simulate"}}
        path1 = cache.put("a" * 64, document)
        path2 = cache.put("b" * 64, json.loads(json.dumps(document)))
        with open(path1, "rb") as h1, open(path2, "rb") as h2:
            assert h1.read() == h2.read()

    def test_keys_and_len(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert len(cache) == 0 and cache.keys() == []
        cache.put("a" * 64, {})
        cache.put("b" * 64, {})
        assert len(cache) == 2
        assert sorted(cache.keys()) == ["a" * 64, "b" * 64]
        assert cache.clear() == 2
        assert len(cache) == 0


class TestEviction:
    def test_lru_eviction_beyond_max_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=2)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        for index, key in enumerate(keys):
            path = cache.put(key, {"i": index})
            # Distinct mtimes make the LRU order deterministic.
            os.utime(path, (1000 + index, 1000 + index))
        assert len(cache) == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None

    def test_get_refreshes_recency(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=2)
        old, young = "a" * 64, "b" * 64
        os.utime(cache.put(old, {}), (1000, 1000))
        os.utime(cache.put(young, {}), (2000, 2000))
        assert cache.get(old) is not None  # touch -> now the youngest
        newest = "c" * 64
        path = cache.put(newest, {})
        os.utime(path, (time.time(), time.time()))
        assert cache.get(old) is not None
        assert cache.get(young) is None  # the untouched one was evicted

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), max_entries=0)

    def test_non_digest_keys_rejected_before_touching_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for key in ("../../../etc/passwd", "/abs/path", "short", "A" * 64, "g" * 64):
            with pytest.raises(ValueError, match="invalid cache key"):
                cache.get(key)
            with pytest.raises(ValueError, match="invalid cache key"):
                cache.put(key, {})


class TestUnitKeys:
    UNIT = {
        "campaign": "verify-x", "experiment": "verify", "variant": "x",
        "index": 0, "unit_id": "u000-k003-n006",
        "k": 3, "n": 6, "seed": 11, "samples": 1, "steps_factor": 1,
        "extra": {"task": "searching"},
    }

    def test_grid_labels_do_not_change_the_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        relabelled = dict(self.UNIT, campaign="other", unit_id="u099", index=99)
        assert cache.unit_key("w", self.UNIT) == cache.unit_key("w", relabelled)

    def test_semantics_and_worker_change_the_key(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        base = cache.unit_key("w", self.UNIT)
        assert cache.unit_key("other-worker", self.UNIT) != base
        assert cache.unit_key("w", dict(self.UNIT, n=7)) != base
        assert cache.unit_key("w", dict(self.UNIT, seed=12)) != base
        assert (
            cache.unit_key("w", dict(self.UNIT, extra={"task": "gathering"})) != base
        )


class TestCampaignDeduplication:
    CELLS = [(3, 6)]
    EXTRA = (("task", "searching"), ("adversary", "ssync"), ("max_states", 20000))

    def _campaign(self):
        return build_cells_campaign(
            experiment="verify",
            variant="searching-ssync-test",
            description="dedup test",
            cells=self.CELLS,
            extra=self.EXTRA,
        )

    def test_identical_units_served_from_cache_across_runs(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        fresh = run_campaign(self._campaign(), verify_worker, cache=cache)
        assert fresh.cached == []
        again = run_campaign(self._campaign(), verify_worker, cache=cache)
        assert again.cached == ["u000-k003-n006"]
        # De-duplication must not change the deterministic aggregate.
        assert fresh.summary_bytes() == again.summary_bytes()

    def test_cached_and_fresh_store_summaries_byte_identical(self, tmp_path):
        """A cached campaign writes the same summary.json a fresh one does."""
        cache = ResultCache(str(tmp_path / "cache"))
        from repro.campaign import ResultStore

        fresh = run_campaign(
            self._campaign(), verify_worker,
            store=ResultStore(str(tmp_path / "store-fresh")), cache=cache,
        )
        cached = run_campaign(
            self._campaign(), verify_worker,
            store=ResultStore(str(tmp_path / "store-cached")), cache=cache,
        )
        assert cached.cached and not cached.resumed
        with open(fresh.summary_path, "rb") as h1, open(cached.summary_path, "rb") as h2:
            assert h1.read() == h2.read()

    def test_failed_units_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        campaign = build_cells_campaign(
            experiment="x", variant="y", description="d", cells=[(1, 3)]
        )
        report = run_campaign(campaign, _boom_worker, cache=cache)
        assert report.records[0]["status"] == "error"
        assert len(cache) == 0
        report2 = run_campaign(campaign, _boom_worker, cache=cache)
        assert report2.cached == []

    def test_dynamically_defined_workers_do_not_use_the_cache(self, tmp_path):
        """Lambdas share a qualname, so caching them could cross results."""
        import warnings as warnings_module

        cache = ResultCache(str(tmp_path))
        campaign = build_cells_campaign(
            experiment="x", variant="y", description="d", cells=[(1, 3)]
        )
        with pytest.warns(RuntimeWarning, match="no stable identity"):
            report = run_campaign(campaign, lambda unit: {"which": "A"}, cache=cache)
        assert report.records[0]["payload"] == {"which": "A"}
        assert len(cache) == 0  # nothing cached under the ambiguous name
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", RuntimeWarning)
            report_b = run_campaign(campaign, lambda unit: {"which": "B"}, cache=cache)
        assert report_b.records[0]["payload"] == {"which": "B"}
        assert report_b.cached == []


class TestApproxCountDrift:
    """Regressions for the incremental-count drift bugs.

    The approximate entry count must track the filesystem: a corrupt
    entry removed by get() has to decrement it, and two threads putting
    the same *new* key must count it once, not twice.  Drift in either
    direction makes a bounded cache evict too early or too late.
    """

    def test_corrupt_entry_removal_decrements_the_count(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=10)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        for key in keys:
            cache.put(key, {"payload": 1})
        assert cache._approx_count == 3
        path = cache._path(keys[0])
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert cache.get(keys[0]) is None  # corrupt: removed
        assert cache._approx_count == len(cache) == 2

    def test_concurrent_same_key_puts_count_once(self, tmp_path, monkeypatch):
        import repro.runs.cache as cache_module

        cache = ResultCache(str(tmp_path), max_entries=10)
        cache.put("a" * 64, {"payload": 0})  # prime the incremental count
        assert cache._approx_count == 1

        # Hold both threads at the tmp-file step so each has passed any
        # pre-write existence check before either replaces the entry —
        # the interleaving in which the old code double-counted.
        barrier = threading.Barrier(2, timeout=10)
        real_mkstemp = cache_module.tempfile.mkstemp

        def rendezvous_mkstemp(*args, **kwargs):
            result = real_mkstemp(*args, **kwargs)
            try:
                barrier.wait()
            except threading.BrokenBarrierError:  # pragma: no cover
                pass
            return result

        monkeypatch.setattr(cache_module.tempfile, "mkstemp", rendezvous_mkstemp)
        threads = [
            threading.Thread(target=lambda: cache.put("b" * 64, {"payload": 1}))
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(cache) == 2
        assert cache._approx_count == 2  # old code: 3


class TestNanosecondEviction:
    """Regression: LRU eviction must order by st_mtime_ns, not seconds.

    With whole-second getmtime, every entry written within one second
    ties, and eviction order silently degrades to hash-path order.  The
    mtimes here are frozen to the same second with sub-float-resolution
    nanosecond offsets, so only a nanosecond-integer comparison can see
    the true LRU order.
    """

    BASE_NS = 1_700_000_000 * 10**9

    def _freeze(self, cache, key, offset_ns):
        os.utime(
            cache._path(key),
            ns=(self.BASE_NS + offset_ns, self.BASE_NS + offset_ns),
        )

    def test_same_second_entries_evict_in_true_lru_order(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=3)
        for key in ("a" * 64, "b" * 64, "c" * 64):
            cache.put(key, {"payload": 1})
        # Path order says "a" is oldest; nanosecond recency says "c" is.
        # The offsets are far below float-seconds resolution (~238ns at
        # this epoch), so getmtime()-based ordering cannot distinguish
        # them and would fall back to evicting "a".
        self._freeze(cache, "a" * 64, 30)
        self._freeze(cache, "b" * 64, 20)
        self._freeze(cache, "c" * 64, 10)
        cache.put("d" * 64, {"payload": 1})  # over the bound: evict one
        remaining = sorted(cache.keys())
        assert "c" * 64 not in remaining, "true LRU entry must be evicted"
        assert "a" * 64 in remaining and "b" * 64 in remaining

    def test_identical_timestamps_tie_break_deterministically(self, tmp_path):
        cache = ResultCache(str(tmp_path))  # unbounded while seeding
        for key in ("b" * 64, "c" * 64, "a" * 64):
            cache.put(key, {"payload": 1})
            self._freeze(cache, key, 0)  # all three truly identical
        cache.max_entries = 2
        cache._evict()
        # Documented tie-break: lexicographic path (= key) order,
        # lowest key first — fully deterministic on any filesystem.
        assert sorted(cache.keys()) == ["b" * 64, "c" * 64]
