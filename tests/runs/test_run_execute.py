"""Tests for the unified execute() dispatcher and its result caching."""

import json

import pytest

from repro.runs import (
    ExperimentSpec,
    ResultCache,
    SimulateSpec,
    VerifySpec,
    execute,
)
from repro.simulator.engine import Simulator
from repro.simulator.options import EngineOptions


def _no_step(*args, **kwargs):  # pragma: no cover - must never run
    raise AssertionError("the engine stepped during a cached run")


class TestExecuteSimulate:
    SPEC = SimulateSpec(algorithm="align", n=12, k=5, steps=300, seed=2, stop="c_star")

    def test_payload_shape_and_determinism(self):
        first = execute(self.SPEC)
        second = execute(self.SPEC)
        assert not first.cached and not second.cached
        assert first.payload == second.payload
        assert first.run_id == second.run_id
        assert first.payload["reached_c_star"]
        assert first.payload["stopped_reason"] == "stop-condition"
        assert first.payload["frames"], "expected at least one move frame"
        assert len(first.payload["trace_sha256"]) == 64

    def test_explicit_initial_counts(self):
        spec = SimulateSpec(
            algorithm="idle", n=6, k=2, steps=4, initial=(1, 0, 1, 0, 0, 0)
        )
        result = execute(spec)
        assert result.payload["initial_counts"] == [1, 0, 1, 0, 0, 0]
        assert result.payload["total_moves"] == 0

    def test_gathering_spec(self):
        spec = SimulateSpec(
            algorithm="gathering", n=10, k=4, steps=2000, seed=1, stop="gathered",
            engine=EngineOptions(exclusive=False, multiplicity_detection=True),
        )
        result = execute(spec)
        assert result.payload["gathered"]

    def test_cache_hit_runs_zero_engine_steps(self, tmp_path, monkeypatch):
        cache = str(tmp_path / "cache")
        fresh = execute(self.SPEC, cache=cache)
        assert not fresh.cached
        # The acceptance check: a repeated identical spec must be served
        # entirely from disk — the engine must never step.
        monkeypatch.setattr(Simulator, "step", _no_step)
        cached = execute(self.SPEC, cache=cache)
        assert cached.cached
        assert cached.run_id == fresh.run_id
        assert json.dumps(cached.payload, sort_keys=True) == json.dumps(
            fresh.payload, sort_keys=True
        )

    def test_refresh_re_executes(self, tmp_path):
        cache = str(tmp_path)
        execute(self.SPEC, cache=cache)
        result = execute(self.SPEC, cache=cache, refresh=True)
        assert not result.cached


class TestExecuteVerify:
    SPEC = VerifySpec(task="searching", cells=((3, 6),), max_states=20000)

    def test_verify_payload(self):
        result = execute(self.SPEC)
        assert result.payload["rows"][0][5] in ("collision", "livelock")
        assert result.payload["passed"] is True
        assert result.payload["cells"][0]["verdict"] in ("collision", "livelock")

    def test_verify_cached_roundtrip(self, tmp_path, monkeypatch):
        cache = str(tmp_path)
        fresh = execute(self.SPEC, cache=cache)
        monkeypatch.setattr(Simulator, "step", _no_step)
        cached = execute(self.SPEC, cache=cache)
        assert cached.cached and cached.payload == fresh.payload


class TestExecuteExperiment:
    SPEC = ExperimentSpec(name="e1", variant="quick")

    def test_experiment_payload_and_cache(self, tmp_path):
        cache = str(tmp_path)
        fresh = execute(self.SPEC, cache=cache)
        assert fresh.payload["passed"] and fresh.ok
        assert "E1" in fresh.payload["rendered"]
        cached = execute(self.SPEC, cache=cache)
        assert cached.cached
        assert cached.payload == fresh.payload

    def test_store_bypasses_whole_run_cache_but_units_dedup(self, tmp_path):
        cache = str(tmp_path / "cache")
        execute(self.SPEC, cache=cache)
        # With a store attached the run must actually execute (so the
        # store artifacts get written) — served unit-by-unit from the
        # de-duplication cache instead of the whole-run entry.
        stored = execute(self.SPEC, cache=cache, store=str(tmp_path / "store"))
        assert not stored.cached
        assert any("served from the result cache" in note for note in stored.payload["notes"])
        assert (tmp_path / "store" / "e1-quick" / "summary.json").exists()


class TestExecuteErrors:
    def test_unknown_spec_type_rejected(self):
        with pytest.raises(TypeError):
            execute(object())

    def test_transient_verify_failure_is_not_cached(self, tmp_path, monkeypatch):
        """A run whose units error transiently must be re-attempted, not replayed."""
        from repro.modelcheck.checker import ModelChecker

        spec = VerifySpec(task="searching", cells=((3, 6),), max_states=19999)
        cache = str(tmp_path)

        def explode(self):
            raise OSError("transient failure")

        monkeypatch.setattr(ModelChecker, "run", explode)
        broken = execute(spec, cache=cache)
        assert not broken.payload["passed"]
        assert broken.deterministic is False
        assert "ERROR" in str(broken.payload["rows"][0])

        monkeypatch.undo()
        healed = execute(spec, cache=cache)
        assert not healed.cached, "a failed payload must not have been cached"
        assert healed.payload["passed"] and healed.deterministic
        # ...and the healthy result now IS cached.
        assert execute(spec, cache=cache).cached

    def test_refresh_bypasses_the_unit_cache_too(self, tmp_path, monkeypatch):
        """--refresh must re-execute campaign units, not rebuild from them."""
        from repro.modelcheck.checker import ModelChecker

        spec = VerifySpec(task="searching", cells=((3, 6),), max_states=19998)
        cache = str(tmp_path)
        calls = {"n": 0}
        real_run = ModelChecker.run

        def counting_run(self):
            calls["n"] += 1
            return real_run(self)

        monkeypatch.setattr(ModelChecker, "run", counting_run)
        execute(spec, cache=cache)
        assert calls["n"] == 1
        refreshed = execute(spec, cache=cache, refresh=True)
        assert calls["n"] == 2, "refresh must re-run the checker despite unit-cache entries"
        assert not refreshed.cached
        # The refreshed results repopulated both cache levels.
        assert execute(spec, cache=cache).cached
        assert calls["n"] == 2

    def test_history_dependent_payloads_never_enter_whole_run_cache(self, tmp_path):
        """Resume/cache-serving notes must not leak into later cache hits."""
        spec = ExperimentSpec(name="e1", variant="quick")
        cache = str(tmp_path / "cache")
        execute(spec, cache=cache, store=str(tmp_path / "store"))
        resumed = execute(spec, cache=cache, store=str(tmp_path / "store"))
        assert any("result store" in note for note in resumed.payload["notes"])
        # Store-backed runs never write the whole-run entry, and a
        # store-less run whose units came from the de-dup cache carries a
        # history note, so its payload is not cached either.
        noted = execute(spec, cache=cache)
        assert not noted.cached
        assert any("result cache" in note for note in noted.payload["notes"])
        again = execute(spec, cache=cache)
        assert not again.cached
        # A run against a fresh cache produces the canonical payload and
        # THAT one is a whole-run entry on repeat.
        clean_cache = str(tmp_path / "clean")
        clean = execute(spec, cache=clean_cache)
        assert clean.payload["notes"] == [] or not any(
            "cache" in note or "store" in note for note in clean.payload["notes"]
        )
        hit = execute(spec, cache=clean_cache)
        assert hit.cached and hit.payload == clean.payload


class TestSpecCoercionErrors:
    def test_structurally_wrong_documents_raise_value_error(self):
        """TypeErrors from coercion must surface as ValueError (HTTP 400)."""
        from repro.runs import spec_from_jsonable

        with pytest.raises(ValueError):
            spec_from_jsonable({"kind": "verify", "task": "searching", "cells": [3, 6]})
        with pytest.raises(ValueError):
            spec_from_jsonable(
                {"kind": "simulate", "engine": {"decision_cache_size": "big"}}
            )
