"""Tests for the RunSpec hierarchy: round-trips, validation, canonical JSON."""

import json

import pytest

from repro.runs import (
    ExperimentSpec,
    SimulateSpec,
    VerifySpec,
    cache_key,
    canonical_spec_json,
    make_algorithm,
    make_scheduler,
    spec_from_jsonable,
)
from repro.runs.spec import ALGORITHMS, SCHEDULERS
from repro.simulator.options import EngineOptions


class TestSimulateSpec:
    def test_roundtrip_through_jsonable(self):
        spec = SimulateSpec(
            algorithm="gathering",
            n=11,
            k=4,
            steps=500,
            seed=7,
            stop="gathered",
            engine=EngineOptions(exclusive=False, multiplicity_detection=True),
        )
        assert spec_from_jsonable(spec.to_jsonable()) == spec

    def test_roundtrip_survives_json_text(self):
        spec = SimulateSpec(initial=(1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0), n=12, k=5)
        document = json.loads(json.dumps(spec.to_jsonable()))
        assert spec_from_jsonable(document) == spec

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            SimulateSpec(algorithm="teleport")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            SimulateSpec(scheduler="oracle")

    def test_unknown_stop_rejected(self):
        with pytest.raises(ValueError, match="unknown stop"):
            SimulateSpec(stop="whenever")

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SimulateSpec(n=2, k=1)
        with pytest.raises(ValueError):
            SimulateSpec(n=8, k=9)

    def test_initial_counts_must_match_n_and_k(self):
        with pytest.raises(ValueError, match="initial counts"):
            SimulateSpec(n=6, k=2, initial=(1, 1, 1, 0, 0, 0))

    def test_engine_must_be_options(self):
        with pytest.raises(TypeError):
            SimulateSpec(engine={"exclusive": True})

    def test_wrong_typed_fields_rejected(self):
        """JSON clients send strings/floats; they must not pass as ints/bools."""
        with pytest.raises(ValueError, match="must be an integer"):
            SimulateSpec(n=12.0, k=5)
        with pytest.raises(ValueError, match="must be an integer"):
            SimulateSpec(n=12, k="5")
        with pytest.raises(ValueError, match="must be an integer"):
            SimulateSpec(steps=True)
        with pytest.raises(ValueError, match="must be an integer"):
            VerifySpec(task="searching", cells=((3.0, 6),))
        with pytest.raises(ValueError, match="must be a boolean"):
            EngineOptions(exclusive="false")
        with pytest.raises(ValueError, match="must be a boolean"):
            EngineOptions(chirality="no")
        with pytest.raises(ValueError, match="presentation_seed"):
            EngineOptions(presentation_seed="7")

    def test_truthy_string_booleans_rejected_end_to_end(self):
        """The HTTP-shaped document path must reject {"exclusive": "false"}."""
        with pytest.raises(ValueError):
            spec_from_jsonable(
                {"kind": "simulate", "engine": {"exclusive": "false"}}
            )
        with pytest.raises(ValueError):
            spec_from_jsonable({"kind": "simulate", "n": 12.0, "k": 5})


class TestVerifyAndExperimentSpecs:
    def test_verify_roundtrip(self):
        spec = VerifySpec(task="gathering", cells=((3, 6), (2, 5)), adversary="sequential")
        assert spec_from_jsonable(spec.to_jsonable()) == spec

    def test_verify_rejects_unknown_task_and_bad_cells(self):
        with pytest.raises(ValueError, match="unknown verification task"):
            VerifySpec(task="conquest", cells=((3, 6),))
        with pytest.raises(ValueError, match="invalid cell"):
            VerifySpec(task="searching", cells=((7, 6),))
        with pytest.raises(ValueError, match="non-empty"):
            VerifySpec(task="searching", cells=())

    def test_experiment_roundtrip_and_validation(self):
        spec = ExperimentSpec(name="e3", variant="full")
        assert spec_from_jsonable(spec.to_jsonable()) == spec
        with pytest.raises(ValueError, match="unknown experiment"):
            ExperimentSpec(name="e42")
        with pytest.raises(ValueError, match="variant"):
            ExperimentSpec(name="e1", variant="huge")


class TestDispatchAndKeys:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown run spec kind"):
            spec_from_jsonable({"kind": "teleport"})
        with pytest.raises(ValueError):
            spec_from_jsonable(["not", "a", "dict"])

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            spec_from_jsonable({"kind": "experiment", "name": "e1", "speed": 11})

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_spec_json(ExperimentSpec(name="e1"))
        assert text == json.dumps(json.loads(text), sort_keys=True, separators=(",", ":"))

    def test_cache_key_stable_and_spec_sensitive(self):
        a1 = SimulateSpec(algorithm="align", n=12, k=5, seed=3)
        a2 = SimulateSpec(algorithm="align", n=12, k=5, seed=3)
        b = SimulateSpec(algorithm="align", n=12, k=5, seed=4)
        assert cache_key(a1) == cache_key(a2)
        assert cache_key(a1) != cache_key(b)
        # Engine knobs are part of the identity too.
        c = SimulateSpec(algorithm="align", n=12, k=5, seed=3,
                         engine=EngineOptions(chirality=True))
        assert cache_key(a1) != cache_key(c)

    def test_registries_instantiate(self):
        for name in ALGORITHMS:
            assert make_algorithm(name) is not None
        for name in SCHEDULERS:
            assert make_scheduler(name, seed=1) is not None
