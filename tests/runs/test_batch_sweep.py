"""Tests for BatchSweepSpec and its batched executor."""

import pytest

from repro.batchsim import available_backends
from repro.runs import (
    BatchSweepSpec,
    EngineOptions,
    SimulateSpec,
    cache_key,
    canonical_spec_json,
    execute,
    spec_from_jsonable,
)

BACKENDS = list(available_backends())


class TestSpec:
    def test_roundtrip_through_jsonable(self):
        spec = BatchSweepSpec(
            algorithm="ring-clearing",
            n=13,
            k=5,
            steps=150,
            seeds=(3, 1, 4),
            scheduler="semi_synchronous",
            engine=EngineOptions(collision_policy="record"),
        )
        again = spec_from_jsonable(spec.to_jsonable())
        assert again == spec
        assert canonical_spec_json(again) == canonical_spec_json(spec)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            BatchSweepSpec(algorithm="teleport")
        with pytest.raises(ValueError, match="unknown scheduler"):
            BatchSweepSpec(scheduler="oracle")
        with pytest.raises(ValueError, match="unknown stop"):
            BatchSweepSpec(stop="never")
        with pytest.raises(ValueError, match="seeds must be non-empty"):
            BatchSweepSpec(seeds=())
        with pytest.raises(ValueError, match="must be an integer"):
            BatchSweepSpec(seeds=(0, True))
        with pytest.raises(ValueError, match="n >= 3"):
            BatchSweepSpec(n=2, k=1)

    def test_member_spec(self):
        spec = BatchSweepSpec(
            algorithm="align", n=12, k=5, steps=300, seeds=(7, 9), stop="c_star"
        )
        member = spec.member(9)
        assert member == SimulateSpec(
            algorithm="align", n=12, k=5, steps=300, seed=9, stop="c_star"
        )

    def test_cache_key_is_seed_order_sensitive(self):
        a = BatchSweepSpec(seeds=(1, 2))
        b = BatchSweepSpec(seeds=(2, 1))
        assert cache_key(a) != cache_key(b)


@pytest.mark.parametrize("backend", BACKENDS)
class TestExecuteParity:
    def test_runs_equal_member_payloads(self, backend):
        spec = BatchSweepSpec(
            algorithm="align", n=12, k=5, steps=400, seeds=(0, 1, 2, 3), stop="c_star"
        )
        result = execute(spec, backend=backend)
        payload = result.payload
        assert payload["num_runs"] == 4
        assert payload["seeds"] == [0, 1, 2, 3]
        for index, seed in enumerate(spec.seeds):
            assert payload["runs"][index] == execute(spec.member(seed)).payload
        assert payload["passed"]

    def test_collision_recording_parity(self, backend):
        spec = BatchSweepSpec(
            algorithm="sweep",
            n=10,
            k=4,
            steps=40,
            seeds=(5, 6),
            scheduler="synchronous",
            engine=EngineOptions(collision_policy="record"),
        )
        result = execute(spec, backend=backend)
        for index, seed in enumerate(spec.seeds):
            assert result.payload["runs"][index] == execute(spec.member(seed)).payload
        assert result.payload["passed"] == (
            not any(run["had_collision"] for run in result.payload["runs"])
        )


class TestCaching:
    def test_cache_roundtrip_and_backend_independence(self, tmp_path):
        spec = BatchSweepSpec(algorithm="align", n=9, k=4, steps=60, seeds=(1, 2))
        cache = str(tmp_path / "cache")
        first = execute(spec, cache=cache, backend="stdlib")
        assert not first.cached
        # A hit under a different backend serves the same bytes: the
        # backend is execution context and never enters the key.
        second = execute(spec, cache=cache)
        assert second.cached
        assert second.payload == first.payload
        assert second.run_id == first.run_id
        refreshed = execute(spec, cache=cache, refresh=True, backend="stdlib")
        assert not refreshed.cached
        assert refreshed.payload == first.payload
