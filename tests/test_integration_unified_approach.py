"""End-to-end integration tests: the unified approach as a whole.

These tests exercise the public package API the way a downstream user
would (imports from ``repro`` directly), and check the paper's central
claim: the *same* first phase (Align, reaching C*) feeds all three tasks.
"""

import pytest

import repro
from repro import (
    AlignAlgorithm,
    Configuration,
    GatheringAlgorithm,
    NminusThreeAlgorithm,
    RingClearingAlgorithm,
    Simulator,
)
from repro.analysis.feasibility import Feasibility, searching_feasibility
from repro.simulator import run_gathering
from repro.tasks import ExplorationMonitor, GatheringMonitor, SearchingMonitor


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_snippet(self):
        start = Configuration.from_occupied(12, [0, 2, 5, 6, 9])
        assert start.is_rigid
        engine = Simulator(AlignAlgorithm(), start)
        trace = engine.run_until(lambda sim: sim.configuration.is_c_star(), 500)
        assert trace.final_configuration.is_c_star()


def _rigid_start(n: int, k: int, index: int = 0) -> Configuration:
    from repro.workloads.generators import rigid_configurations

    return rigid_configurations(n, k)[index]


class TestUnifiedApproach:
    """One rigid start, three tasks, one common first phase."""

    START = _rigid_start(13, 6, index=5)

    def test_start_is_rigid(self):
        assert self.START.is_rigid

    def test_phase_one_is_shared(self):
        """Ring Clearing and Gathering behave exactly like Align until C*-type configurations."""
        align = Simulator(AlignAlgorithm(), self.START, presentation_seed=5)
        clearing = Simulator(RingClearingAlgorithm(), self.START, presentation_seed=5)
        for _ in range(200):
            align.step()
            clearing.step()
            if align.configuration.is_c_star():
                break
            # Before any A-class configuration is reached the two algorithms
            # perform identical moves (the classifier falls back to Align).
            from repro.algorithms.classification import classify_a

            if classify_a(align.configuration) is None:
                assert align.configuration == clearing.configuration

    def test_searching_and_exploration_from_the_start(self):
        searching = SearchingMonitor()
        exploration = ExplorationMonitor()
        engine = Simulator(
            RingClearingAlgorithm(), self.START, monitors=[searching, exploration]
        )
        engine.run(30 * 13 * 6)
        assert searching.every_edge_cleared(2)
        assert exploration.all_robots_covered_ring(2)
        assert not engine.trace.had_collision

    def test_gathering_from_the_same_start(self):
        monitor = GatheringMonitor()
        trace, _ = run_gathering(GatheringAlgorithm(), self.START, monitors=[monitor])
        assert monitor.gathering_achieved
        assert trace.final_configuration.k == 6

    def test_feasibility_table_agrees_with_what_we_just_did(self):
        assert searching_feasibility(13, 6).verdict is Feasibility.FEASIBLE


class TestNminusThreeEndToEnd:
    def test_large_team_patrol(self):
        n = 14
        start = _rigid_start(n, n - 3)
        assert start.k == n - 3
        assert start.is_rigid
        searching = SearchingMonitor()
        engine = Simulator(NminusThreeAlgorithm(), start, monitors=[searching])
        engine.run(35 * n * (n - 3))
        assert searching.every_edge_cleared(2)


class TestCrossTaskConsistency:
    @pytest.mark.parametrize("n,k", [(11, 5), (12, 6)])
    def test_c_star_is_the_bridge_configuration(self, n, k):
        """C* is simultaneously Align's target, an A-f configuration, and C*-type."""
        from repro.algorithms.classification import AClass, classify_a

        c_star = Configuration.from_gaps((0,) * (k - 2) + (1, n - k - 1))
        assert c_star.is_c_star()
        assert c_star.is_c_star_type()
        classification = classify_a(c_star)
        assert classification is not None and classification.label == AClass.A_F
        from repro.algorithms.align import plan_align

        assert plan_align(c_star) == {}
