"""Tests for the experiment drivers, report rendering and the CLI."""

import io

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS
from repro.experiments import e1_configuration_census, e6_feasibility_table
from repro.experiments.report import ExperimentResult, render_table
from repro.workloads.suites import Suite


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2.5), (30, "x")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text
        assert all(len(line) == len(lines[0]) for line in lines[:1])

    def test_experiment_result_render(self):
        result = ExperimentResult(
            experiment="E0", title="demo", header=("x", "y"), rows=[(1, 2)]
        )
        result.add_row(3, 4)
        result.add_note("a note")
        text = result.render()
        assert "E0" in text and "a note" in text and "PASS" in text

    def test_experiment_result_fail_rendering(self):
        result = ExperimentResult(experiment="E0", title="demo", header=("x",), passed=False)
        assert "FAIL" in result.render()


class TestExperimentRegistry:
    def test_registry_contains_all_eight(self):
        assert sorted(EXPERIMENTS) == ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"]

    def test_e1_quick_passes(self):
        result = e1_configuration_census.run("quick")
        assert result.passed
        assert len(result.rows) == 6
        assert all(row[-1] == "yes" for row in result.rows)

    def test_e6_simulation_cross_check_helper(self):
        assert e6_feasibility_table.simulation_cross_check(6, 11)
        assert e6_feasibility_table.simulation_cross_check(7, 10)
        assert not e6_feasibility_table.simulation_cross_check(4, 9)

    def test_suite_dataclass_defaults(self):
        suite = Suite(name="x", description="d", pairs=((3, 9),))
        assert suite.samples_per_pair == 3
        assert suite.steps_factor == 30

    def test_e8_quick_passes_and_agrees_everywhere(self):
        from repro.experiments import e8_verification

        result = e8_verification.run("quick")
        assert result.passed
        assert all(row[-1] == "yes" for row in result.rows)
        # Feasible and infeasible cells are both represented...
        verdicts = {row[4] for row in result.rows}
        assert "solved" in verdicts
        assert verdicts & {"collision", "livelock"}
        # ...and at least one infeasible cell produced a concrete trace.
        assert any("counterexample trace" in note for note in result.notes)

    def test_e8_applicable_checks_cover_tasks(self):
        from repro.experiments.e8_verification import applicable_checks

        checks = {task for task, _, _ in applicable_checks(7, 10)}
        assert checks == {"gathering", "align", "searching", "exploration"}
        assert {task for task, _, _ in applicable_checks(2, 6)} == {"gathering", "searching"}


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "e1"])
        assert args.name == "e1" and not args.full
        args = parser.parse_args(["census", "9", "6"])
        assert (args.n, args.k) == (9, 6)

    def test_cli_census(self):
        out = io.StringIO()
        assert main(["census", "9", "6"], out=out) == 0
        assert "7" in out.getvalue()

    def test_cli_feasibility(self):
        out = io.StringIO()
        assert main(["feasibility", "12"], out=out) == 0
        text = out.getvalue()
        assert "feasible" in text and "infeasible" in text and "open" in text

    def test_cli_experiment_e1(self):
        out = io.StringIO()
        assert main(["experiment", "e1"], out=out) == 0
        assert "Figure 4" in out.getvalue()

    def test_cli_experiment_parallel_jobs(self):
        out = io.StringIO()
        assert main(["experiment", "e1", "--jobs", "2"], out=out) == 0
        assert "Figure 4" in out.getvalue()

    def test_cli_experiment_store_resume(self, tmp_path):
        store = str(tmp_path / "results")
        first = io.StringIO()
        assert main(["experiment", "e1", "--store", store], out=first) == 0
        second = io.StringIO()
        assert main(["experiment", "e1", "--store", store], out=second) == 0
        assert "restored from the result store" in second.getvalue()
        assert (tmp_path / "results" / "e1-quick" / "summary.json").exists()

    def test_parser_campaign_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "e7", "--jobs", "4", "--store", "r", "--progress"])
        assert args.jobs == 4 and args.store == "r" and args.progress
        args = parser.parse_args(["all", "--jobs", "2"])
        assert args.jobs == 2 and args.store is None

    def test_cli_demo_align(self):
        out = io.StringIO()
        assert main(["demo", "align", "12", "5", "--steps", "300"], out=out) == 0
        assert "reached C*" in out.getvalue()

    def test_cli_demo_gathering(self):
        out = io.StringIO()
        assert main(["demo", "gathering", "11", "4", "--steps", "2000"], out=out) == 0
        assert "gathered!" in out.getvalue()

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e42"], out=io.StringIO())
