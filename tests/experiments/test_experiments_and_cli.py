"""Tests for the experiment drivers, report rendering and the CLI."""

import argparse
import io

import pytest

from repro.cli import build_parser, main, parse_int_grid
from repro.experiments import EXPERIMENTS
from repro.experiments import e1_configuration_census, e6_feasibility_table
from repro.experiments.report import ExperimentResult, render_table
from repro.workloads.suites import Suite


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [(1, 2.5), (30, "x")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text
        assert all(len(line) == len(lines[0]) for line in lines[:1])

    def test_experiment_result_render(self):
        result = ExperimentResult(
            experiment="E0", title="demo", header=("x", "y"), rows=[(1, 2)]
        )
        result.add_row(3, 4)
        result.add_note("a note")
        text = result.render()
        assert "E0" in text and "a note" in text and "PASS" in text

    def test_experiment_result_fail_rendering(self):
        result = ExperimentResult(experiment="E0", title="demo", header=("x",), passed=False)
        assert "FAIL" in result.render()


class TestExperimentRegistry:
    def test_registry_contains_all_eight(self):
        assert sorted(EXPERIMENTS) == ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8"]

    def test_e1_quick_passes(self):
        result = e1_configuration_census.run("quick")
        assert result.passed
        assert len(result.rows) == 6
        assert all(row[-1] == "yes" for row in result.rows)

    def test_e6_simulation_cross_check_helper(self):
        assert e6_feasibility_table.simulation_cross_check(6, 11)
        assert e6_feasibility_table.simulation_cross_check(7, 10)
        assert not e6_feasibility_table.simulation_cross_check(4, 9)

    def test_suite_dataclass_defaults(self):
        suite = Suite(name="x", description="d", pairs=((3, 9),))
        assert suite.samples_per_pair == 3
        assert suite.steps_factor == 30

    def test_e8_quick_passes_and_agrees_everywhere(self):
        from repro.experiments import e8_verification

        result = e8_verification.run("quick")
        assert result.passed
        assert all(row[-1] == "yes" for row in result.rows)
        # Feasible and infeasible cells are both represented...
        verdicts = {row[4] for row in result.rows}
        assert "solved" in verdicts
        assert verdicts & {"collision", "livelock"}
        # ...and at least one infeasible cell produced a concrete trace.
        assert any("counterexample trace" in note for note in result.notes)

    def test_e8_applicable_checks_cover_tasks(self):
        from repro.experiments.e8_verification import applicable_checks

        checks = {task for task, _, _ in applicable_checks(7, 10)}
        assert checks == {"gathering", "align", "searching", "exploration"}
        assert {task for task, _, _ in applicable_checks(2, 6)} == {"gathering", "searching"}


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "e1"])
        assert args.name == "e1" and not args.full
        args = parser.parse_args(["census", "9", "6"])
        assert (args.n, args.k) == (9, 6)

    def test_cli_census(self):
        out = io.StringIO()
        assert main(["census", "9", "6"], out=out) == 0
        assert "7" in out.getvalue()

    def test_cli_feasibility(self):
        out = io.StringIO()
        assert main(["feasibility", "12"], out=out) == 0
        text = out.getvalue()
        assert "feasible" in text and "infeasible" in text and "open" in text

    def test_cli_experiment_e1(self):
        out = io.StringIO()
        assert main(["experiment", "e1"], out=out) == 0
        assert "Figure 4" in out.getvalue()

    def test_cli_experiment_parallel_jobs(self):
        out = io.StringIO()
        assert main(["experiment", "e1", "--jobs", "2"], out=out) == 0
        assert "Figure 4" in out.getvalue()

    def test_cli_experiment_store_resume(self, tmp_path):
        store = str(tmp_path / "results")
        first = io.StringIO()
        assert main(["experiment", "e1", "--store", store], out=first) == 0
        second = io.StringIO()
        assert main(["experiment", "e1", "--store", store], out=second) == 0
        assert "restored from the result store" in second.getvalue()
        assert (tmp_path / "results" / "e1-quick" / "summary.json").exists()

    def test_parser_campaign_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "e7", "--jobs", "4", "--store", "r", "--progress"])
        assert args.jobs == 4 and args.store == "r" and args.progress
        args = parser.parse_args(["all", "--jobs", "2"])
        assert args.jobs == 2 and args.store is None

    def test_cli_demo_align(self):
        out = io.StringIO()
        assert main(["demo", "align", "12", "5", "--steps", "300"], out=out) == 0
        assert "reached C*" in out.getvalue()

    def test_cli_demo_gathering(self):
        out = io.StringIO()
        assert main(["demo", "gathering", "11", "4", "--steps", "2000"], out=out) == 0
        assert "gathered!" in out.getvalue()

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e42"], out=io.StringIO())


class TestCliErrorPaths:
    def test_unknown_verify_task_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "conquest", "--k", "3", "--n", "6"], out=io.StringIO())

    def test_unknown_demo_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "teleport", "12", "5"], out=io.StringIO())

    @pytest.mark.parametrize("grid", ["", " , ", "3-x", "x", "5-3", "1-2-3x"])
    def test_parse_int_grid_rejects_malformed(self, grid):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_int_grid(grid)

    def test_parse_int_grid_accepts_mixes(self):
        assert parse_int_grid("2,4-6") == (2, 4, 5, 6)
        assert parse_int_grid("3, 3,3-4") == (3, 4)

    def test_malformed_grid_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "gathering", "--k", "3-x", "--n", "6"], out=io.StringIO())
        assert excinfo.value.code == 2
        assert "malformed" in capsys.readouterr().err

    def test_verify_grid_without_valid_cells_exits_2(self, capsys):
        # k > n everywhere: every cell is invalid.
        assert main(["verify", "gathering", "--k", "9", "--n", "4"], out=io.StringIO()) == 2
        assert "no valid (k, n) cells" in capsys.readouterr().err

    def test_cache_and_no_cache_conflict(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["experiment", "e1", "--cache", str(tmp_path), "--no-cache"],
                out=io.StringIO(),
            )
        assert excinfo.value.code == 2

    def test_store_pointing_at_a_file_rejected(self, tmp_path):
        bogus = tmp_path / "store.json"
        bogus.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "e1", "--store", str(bogus)], out=io.StringIO())
        assert excinfo.value.code == 2

    def test_store_and_cache_must_differ(self, tmp_path):
        shared = str(tmp_path / "dir")
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["experiment", "e1", "--jobs", "2", "--store", shared, "--cache", shared],
                out=io.StringIO(),
            )
        assert excinfo.value.code == 2

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e1", "--jobs", "0"], out=io.StringIO())

    def test_negative_demo_steps_is_a_usage_error_not_a_traceback(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "align", "12", "5", "--steps", "-1"], out=io.StringIO())
        assert excinfo.value.code == 2
        assert "steps must be >= 0" in capsys.readouterr().err

    def test_serve_does_not_accept_refresh(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--refresh"])


class TestCliResultCache:
    def test_demo_second_invocation_is_a_cache_hit_with_zero_engine_steps(
        self, tmp_path, monkeypatch
    ):
        cache = str(tmp_path / "cache")
        argv = ["demo", "align", "12", "5", "--steps", "300", "--cache", cache]
        first = io.StringIO()
        assert main(argv, out=first) == 0
        assert "reached C*" in first.getvalue()

        from repro.simulator.engine import Simulator

        def no_step(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("engine stepped during a cached CLI run")

        monkeypatch.setattr(Simulator, "step", no_step)
        second = io.StringIO()
        assert main(argv, out=second) == 0
        assert second.getvalue() == first.getvalue()

    def test_verify_second_invocation_served_from_cache(self, tmp_path, monkeypatch):
        cache = str(tmp_path / "cache")
        argv = ["verify", "searching", "--k", "3", "--n", "6", "--cache", cache]
        first = io.StringIO()
        assert main(argv, out=first) == 0

        from repro.modelcheck.checker import ModelChecker

        def no_run(*args, **kwargs):  # pragma: no cover - must never run
            raise AssertionError("model checker ran during a cached CLI run")

        monkeypatch.setattr(ModelChecker, "run", no_run)
        second = io.StringIO()
        assert main(argv, out=second) == 0
        assert second.getvalue() == first.getvalue()

    def test_cache_env_var_is_honoured(self, tmp_path, monkeypatch):
        from repro.cli import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "envcache"))
        out = io.StringIO()
        assert main(["demo", "align", "12", "5", "--steps", "300"], out=out) == 0
        assert (tmp_path / "envcache").is_dir()

    def test_no_cache_disables_env_var(self, tmp_path, monkeypatch):
        from repro.cli import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "envcache"))
        out = io.StringIO()
        assert main(["demo", "align", "12", "5", "--steps", "300", "--no-cache"], out=out) == 0
        assert not (tmp_path / "envcache").exists()

    def test_env_cache_pointing_at_a_file_rejected(self, tmp_path, monkeypatch):
        from repro.cli import CACHE_ENV_VAR

        bogus = tmp_path / "cache.json"
        bogus.write_text("{}")
        monkeypatch.setenv(CACHE_ENV_VAR, str(bogus))
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "align", "12", "5"], out=io.StringIO())
        assert excinfo.value.code == 2

    def test_refresh_re_executes_despite_cache(self, tmp_path, monkeypatch):
        cache = str(tmp_path / "cache")
        argv = ["demo", "align", "12", "5", "--steps", "300", "--cache", cache]
        first = io.StringIO()
        assert main(argv, out=first) == 0

        from repro.simulator.engine import Simulator

        steps = {"n": 0}
        real_step = Simulator.step

        def counting_step(self):
            steps["n"] += 1
            return real_step(self)

        monkeypatch.setattr(Simulator, "step", counting_step)
        second = io.StringIO()
        assert main(argv + ["--refresh"], out=second) == 0
        assert steps["n"] > 0, "--refresh must actually re-run the engine"
        assert second.getvalue() == first.getvalue()
