"""Property tests: scheduler fairness and engine/model-checker agreement.

Two families of properties:

* **Bounded fairness** — every scheduler with a fairness guarantee must
  activate every robot within a bounded window of steps, for every seed.
* **Transition-relation consistency** — every step the engine actually
  executes under an atomic scheduler must be a transition the model
  checker's branching driver enumerates for the same configuration, and
  every pending move committed by the asynchronous scheduler's Look must
  be an outcome the driver considers possible for that node.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import AlignAlgorithm, GatheringAlgorithm
from repro.algorithms.baselines import IdleAlgorithm
from repro.core.configuration import Configuration
from repro.scheduler.asynchronous import AsynchronousScheduler
from repro.scheduler.base import ActivationKind
from repro.scheduler.sequential import RoundRobinScheduler
from repro.scheduler.synchronous import SemiSynchronousScheduler, SynchronousScheduler
from repro.simulator.branching import IDLE, BranchingDriver
from repro.simulator.engine import Simulator

CONFIGURATION = Configuration.from_occupied(9, (0, 1, 3, 6))

seeds = st.integers(min_value=0, max_value=10_000)


def _max_activation_gap(scheduler, steps=300):
    """Largest number of consecutive steps any robot sits unactivated."""
    engine = Simulator(IdleAlgorithm(), CONFIGURATION, scheduler=scheduler)
    last_seen = {r: 0 for r in range(engine.num_robots)}
    worst = 0
    for step in range(1, steps + 1):
        event = engine.step()
        for robot in event.robots:
            worst = max(worst, step - last_seen[robot])
            last_seen[robot] = step
    for robot, seen in last_seen.items():
        worst = max(worst, steps - seen)
    return worst


class TestBoundedFairness:
    def test_synchronous_window_is_one(self):
        assert _max_activation_gap(SynchronousScheduler()) == 1

    def test_round_robin_window_is_k(self):
        assert _max_activation_gap(RoundRobinScheduler()) == CONFIGURATION.k

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_semi_synchronous_window_bounded(self, seed):
        bound = 7
        scheduler = SemiSynchronousScheduler(seed=seed, fairness_bound=bound)
        # A robot is forced into the subset once its starvation counter
        # reaches the bound, so no gap can exceed bound + 1.
        assert _max_activation_gap(scheduler) <= bound + 1

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_asynchronous_window_bounded(self, seed):
        k = CONFIGURATION.k
        scheduler = AsynchronousScheduler(
            seed=seed, max_pending_age=5, fairness_bound=10
        )
        # Worst case: a robot starves to the bound, then waits behind up
        # to k - 1 other starving robots and k - 1 overdue moves (forced
        # releases preempt forced looks).
        assert _max_activation_gap(scheduler) <= 10 + 2 * k


class TestTransitionRelationConsistency:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_ssync_engine_steps_are_checker_transitions(self, seed):
        """Each SSYNC engine step appears in the branching relation."""
        driver = BranchingDriver(AlignAlgorithm(), CONFIGURATION.n)
        engine = Simulator(
            AlignAlgorithm(),
            CONFIGURATION,
            scheduler=SemiSynchronousScheduler(seed=seed, fairness_bound=5),
            presentation_seed=seed,
        )
        for _ in range(40):
            before = engine.configuration.counts
            engine.step()
            after = engine.configuration.counts
            successors = {t.counts_after for t in driver.successors(before)}
            assert after in successors

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_ssync_gathering_steps_are_checker_transitions(self, seed):
        initial = Configuration.from_occupied(9, (0, 2, 3, 6))
        driver = BranchingDriver(GatheringAlgorithm(), 9, multiplicity_detection=True)
        engine = Simulator(
            GatheringAlgorithm(),
            initial,
            scheduler=SemiSynchronousScheduler(seed=seed, fairness_bound=5),
            exclusive=False,
            multiplicity_detection=True,
            presentation_seed=seed,
        )
        for _ in range(60):
            before = engine.configuration.counts
            engine.step()
            after = engine.configuration.counts
            successors = {t.counts_after for t in driver.successors(before)}
            assert after in successors

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_async_looks_commit_checker_options(self, seed):
        """Every pending move committed at Look is a driver option."""
        n = CONFIGURATION.n
        driver = BranchingDriver(AlignAlgorithm(), n)
        engine = Simulator(
            AlignAlgorithm(),
            CONFIGURATION,
            scheduler=AsynchronousScheduler(seed=seed),
            presentation_seed=seed,
        )
        for _ in range(60):
            before = engine.configuration.counts
            positions_before = engine.positions
            event = engine.step()
            if event.kind is not ActivationKind.LOOK:
                continue
            options = driver.node_options(before)
            for robot_id in event.robots:
                position = positions_before[robot_id]
                target = engine.robot(robot_id).pending_target
                if target is None:
                    assert IDLE in options[position]
                else:
                    direction = 1 if (target - position) % n == 1 else -1
                    assert direction in options[position]
