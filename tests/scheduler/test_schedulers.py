"""Unit tests for the scheduler layer."""

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import SchedulerError
from repro.algorithms.baselines import IdleAlgorithm, SweepAlgorithm
from repro.scheduler import (
    Activation,
    ActivationKind,
    AsynchronousScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    SemiSynchronousScheduler,
    SequentialScheduler,
    SynchronousScheduler,
)
from repro.simulator.engine import Simulator


def make_engine(algorithm=None, scheduler=None, n=8, occupied=(0, 2, 5), **kwargs):
    return Simulator(
        algorithm or IdleAlgorithm(),
        Configuration.from_occupied(n, occupied),
        scheduler=scheduler,
        **kwargs,
    )


class TestActivation:
    def test_constructors(self):
        assert Activation.cycle([1]).kind is ActivationKind.CYCLE
        assert Activation.look([0, 1]).robots == (0, 1)
        assert Activation.move([2]).kind is ActivationKind.MOVE

    def test_requires_robots(self):
        with pytest.raises(ValueError):
            Activation.cycle([])


class TestSequentialScheduler:
    def test_round_robin_cycles_through_robots(self):
        scheduler = SequentialScheduler()
        engine = make_engine(scheduler=scheduler)
        picks = [scheduler.next_activation(engine).robots[0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_alias(self):
        scheduler = RoundRobinScheduler()
        engine = make_engine(scheduler=scheduler)
        assert scheduler.next_activation(engine).robots == (0,)

    def test_random_policy_is_fair_and_seeded(self):
        scheduler = SequentialScheduler(policy="random", seed=7)
        engine = make_engine(scheduler=scheduler)
        picks = [scheduler.next_activation(engine).robots[0] for _ in range(60)]
        assert set(picks) == {0, 1, 2}
        scheduler2 = SequentialScheduler(policy="random", seed=7)
        engine2 = make_engine(scheduler=scheduler2)
        picks2 = [scheduler2.next_activation(engine2).robots[0] for _ in range(60)]
        assert picks == picks2

    def test_callback_policy(self):
        scheduler = SequentialScheduler(policy=lambda engine: 1)
        engine = make_engine(scheduler=scheduler)
        assert scheduler.next_activation(engine).robots == (1,)

    def test_callback_policy_validated(self):
        scheduler = SequentialScheduler(policy=lambda engine: 99)
        engine = make_engine(scheduler=scheduler)
        with pytest.raises(SchedulerError):
            scheduler.next_activation(engine)

    def test_unknown_policy(self):
        scheduler = SequentialScheduler(policy="whatever")
        engine = make_engine(scheduler=scheduler)
        with pytest.raises(SchedulerError):
            scheduler.next_activation(engine)

    def test_reset_restarts_round_robin(self):
        scheduler = SequentialScheduler()
        engine = make_engine(scheduler=scheduler)
        scheduler.next_activation(engine)
        scheduler.reset()
        assert scheduler.next_activation(engine).robots == (0,)


class TestSynchronousSchedulers:
    def test_fsync_activates_everyone(self):
        scheduler = SynchronousScheduler()
        engine = make_engine(scheduler=scheduler)
        activation = scheduler.next_activation(engine)
        assert activation.kind is ActivationKind.CYCLE
        assert activation.robots == (0, 1, 2)

    def test_ssync_subsets_are_nonempty_and_fair(self):
        scheduler = SemiSynchronousScheduler(seed=3, fairness_bound=5)
        engine = make_engine(scheduler=scheduler)
        last_seen = {0: 0, 1: 0, 2: 0}
        for step in range(100):
            activation = scheduler.next_activation(engine)
            assert activation.robots
            for robot in activation.robots:
                last_seen[robot] = step
        assert all(100 - seen <= 10 for seen in last_seen.values())

    def test_ssync_validates_fairness_bound(self):
        with pytest.raises(SchedulerError):
            SemiSynchronousScheduler(fairness_bound=0)


class TestScriptedScheduler:
    def test_replays_script(self):
        script = [Activation.look([0]), Activation.move([0]), Activation.cycle([1])]
        scheduler = ScriptedScheduler(script, repeat=False)
        engine = make_engine(scheduler=scheduler)
        kinds = [scheduler.next_activation(engine).kind for _ in range(3)]
        assert kinds == [ActivationKind.LOOK, ActivationKind.MOVE, ActivationKind.CYCLE]
        with pytest.raises(SchedulerError):
            scheduler.next_activation(engine)

    def test_repeats_by_default(self):
        scheduler = ScriptedScheduler([Activation.cycle([2])])
        engine = make_engine(scheduler=scheduler)
        for _ in range(5):
            assert scheduler.next_activation(engine).robots == (2,)

    def test_empty_script_rejected(self):
        with pytest.raises(SchedulerError):
            ScriptedScheduler([])


class TestAsynchronousScheduler:
    def test_validation(self):
        with pytest.raises(SchedulerError):
            AsynchronousScheduler(move_bias=2.0)
        with pytest.raises(SchedulerError):
            AsynchronousScheduler(max_pending_age=0)

    def test_pending_moves_eventually_executed(self):
        # The naive sweep can collide under full asynchrony (moves executed
        # on outdated snapshots); record collisions instead of raising, the
        # point of this test is scheduler fairness.
        scheduler = AsynchronousScheduler(seed=11, move_bias=0.1, max_pending_age=5)
        engine = make_engine(
            algorithm=SweepAlgorithm(),
            scheduler=scheduler,
            n=10,
            occupied=(0, 4, 7),
            collision_policy="record",
        )
        engine.run(200)
        # Under the sweep algorithm with a fair async adversary every robot
        # eventually both looks and moves.
        for robot in engine.robots():
            assert robot.looks > 0
            assert robot.moves > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            scheduler = AsynchronousScheduler(seed=seed)
            engine = make_engine(
                algorithm=SweepAlgorithm(),
                scheduler=scheduler,
                n=10,
                occupied=(0, 4, 7),
                collision_policy="record",
            )
            engine.run(100)
            return engine.positions

        assert run(5) == run(5)
