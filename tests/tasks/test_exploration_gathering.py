"""Unit tests for the exploration and gathering monitors (and the composite)."""

from repro.core.configuration import Configuration
from repro.algorithms.baselines import IdleAlgorithm, SweepAlgorithm
from repro.algorithms.gathering import GatheringAlgorithm
from repro.simulator.engine import Simulator
from repro.simulator.runner import run_gathering
from repro.tasks import CompositeMonitor, ExplorationMonitor, GatheringMonitor


class TestExplorationMonitor:
    def test_initial_positions_count_as_visits(self):
        cfg = Configuration.from_occupied(8, [0, 3])
        monitor = ExplorationMonitor()
        Simulator(IdleAlgorithm(), cfg, monitors=[monitor])
        assert monitor.visit_counts[0][0] == 1
        assert monitor.visit_counts[1][3] == 1
        assert monitor.coverage_fraction() == 2 / 16

    def test_idle_never_covers(self):
        cfg = Configuration.from_occupied(8, [0, 3])
        monitor = ExplorationMonitor()
        engine = Simulator(IdleAlgorithm(), cfg, monitors=[monitor])
        engine.run(30)
        assert not monitor.all_robots_covered_ring()
        assert monitor.cover_time() == -1
        assert monitor.min_visits() == 0

    def test_sweep_with_chirality_perpetually_explores(self):
        """The paper's example: a unidirectional sweep explores but never clears."""
        cfg = Configuration.from_occupied(8, [0, 3])
        monitor = ExplorationMonitor()
        engine = Simulator(SweepAlgorithm(), cfg, monitors=[monitor], chirality=True)
        engine.run(200)
        assert monitor.all_robots_covered_ring(minimum=3)
        assert monitor.robot_covered_ring(0, minimum=3)
        assert monitor.cover_time() >= 0
        assert set(monitor.nodes_visited_by(0)) == set(range(8))

    def test_visit_steps_are_increasing(self):
        cfg = Configuration.from_occupied(8, [0, 3])
        monitor = ExplorationMonitor()
        engine = Simulator(SweepAlgorithm(), cfg, monitors=[monitor], chirality=True)
        engine.run(100)
        for robot in range(2):
            for node, steps in monitor.visit_steps[robot].items():
                assert steps == sorted(steps)


class TestGatheringMonitor:
    def test_reports_gathering(self):
        cfg = Configuration.from_occupied(10, [0, 1, 3, 6])
        assert cfg.is_rigid
        monitor = GatheringMonitor()
        trace, engine = run_gathering(GatheringAlgorithm(), cfg, monitors=[monitor])
        assert monitor.gathering_achieved
        assert monitor.is_gathered
        assert monitor.gathered_at_step is not None
        assert monitor.max_multiplicity_seen == 4
        assert not monitor.broke_apart_after_gathering
        assert monitor.occupied_nodes_monotone_after(0)

    def test_not_gathered_with_idle(self):
        cfg = Configuration.from_occupied(10, [0, 1, 3, 6])
        monitor = GatheringMonitor()
        engine = Simulator(IdleAlgorithm(), cfg, monitors=[monitor])
        engine.run(20)
        assert not monitor.is_gathered
        assert monitor.gathered_at_step is None

    def test_gathered_at_start(self):
        monitor = GatheringMonitor()
        Simulator(
            IdleAlgorithm(),
            [4, 4, 4],
            ring_size=9,
            exclusive=False,
            multiplicity_detection=True,
            monitors=[monitor],
        )
        assert monitor.gathered_at_step == -1
        assert monitor.is_gathered


class TestCompositeMonitor:
    def test_composite_forwards_callbacks(self):
        cfg = Configuration.from_occupied(8, [0, 3])
        exploration = ExplorationMonitor()
        gathering = GatheringMonitor()
        composite = CompositeMonitor([exploration, gathering])
        engine = Simulator(SweepAlgorithm(), cfg, monitors=[composite], chirality=True)
        engine.run(50)
        assert composite.monitors == [exploration, gathering]
        assert exploration.coverage_fraction() > 0.5
        assert gathering.occupied_history
