"""Unit tests for the graph-searching state machine and monitor."""

from repro.core.configuration import Configuration
from repro.core.ring import Ring
from repro.algorithms.baselines import SweepAlgorithm
from repro.simulator.engine import Simulator
from repro.simulator.trace import MoveRecord
from repro.tasks.searching import SearchingMonitor, SearchState


def make_state(n, occupied):
    ring = Ring(n)
    cfg = Configuration.from_occupied(n, occupied)
    return ring, cfg, SearchState(ring, cfg)


class TestInitialState:
    def test_all_contaminated_with_spread_robots(self):
        _, _, state = make_state(8, [0, 4])
        assert not state.clear_edges
        assert len(state.contaminated_edges) == 8
        assert not state.all_clear

    def test_adjacent_robots_guard_their_edge(self):
        _, _, state = make_state(8, [0, 1])
        assert state.is_clear(0, 1)
        assert len(state.clear_edges) == 1

    def test_block_of_robots_guards_internal_edges(self):
        _, _, state = make_state(10, [2, 3, 4, 5])
        assert state.is_clear(2, 3)
        assert state.is_clear(3, 4)
        assert state.is_clear(4, 5)
        assert not state.is_clear(5, 6)

    def test_fully_occupied_ring_is_clear(self):
        _, _, state = make_state(5, [0, 1, 2, 3, 4])
        assert state.all_clear


class TestDynamics:
    def test_traversal_clears_edge_when_guarded(self):
        # Robots at 0 and 2; the robot at 0 moves to 1: edge (0,1) is
        # traversed but node 0 becomes unoccupied, so (0,1) is immediately
        # recontaminated from the contaminated side; edge (1,2) becomes
        # guarded by both endpoints.
        ring, _, state = make_state(8, [0, 2])
        after = Configuration.from_occupied(8, [1, 2])
        state.apply_moves([MoveRecord(0, 0, 1)], after)
        assert state.is_clear(1, 2)
        assert not state.is_clear(0, 1)

    def test_two_robot_sweep_clears_ring(self):
        """The centralized 2-robot strategy of Section 4.1 clears all edges."""
        n = 7
        ring = Ring(n)
        cfg = Configuration.from_occupied(n, [0, 1])
        state = SearchState(ring, cfg)
        # The robot at node 1 is the anchor; the robot at 0 walks the long
        # way around (0 -> 6 -> 5 -> ... -> 2).
        position = 0
        path = [6, 5, 4, 3, 2]
        for target in path:
            after_nodes = [1, target]
            after = Configuration.from_occupied(n, after_nodes)
            state.apply_moves([MoveRecord(0, position, target)], after)
            position = target
        assert state.all_clear

    def test_single_robot_cannot_clear(self):
        n = 6
        ring = Ring(n)
        cfg = Configuration.from_occupied(n, [0])
        state = SearchState(ring, cfg)
        position = 0
        for _ in range(3 * n):
            target = (position + 1) % n
            after = Configuration.from_occupied(n, [target])
            state.apply_moves([MoveRecord(0, position, target)], after)
            position = target
            assert len(state.clear_edges) <= 1

    def test_clear_region_survives_while_guarded(self):
        # A clear run of edges bounded by robots on both sides cannot be
        # recontaminated, even if interior nodes are unoccupied.
        ring, _, state = make_state(10, [3, 4])
        assert state.is_clear(3, 4)
        after = Configuration.from_occupied(10, [3, 5])
        state.apply_moves([MoveRecord(1, 4, 5)], after)
        assert state.is_clear(4, 5)
        assert state.is_clear(3, 4)
        # Extending the guarded region keeps every interior edge clear.
        after2 = Configuration.from_occupied(10, [2, 5])
        state.apply_moves([MoveRecord(0, 3, 2)], after2)
        assert state.is_clear(2, 3)
        assert state.is_clear(3, 4)
        assert state.is_clear(4, 5)

    def test_recontamination_when_guard_leaves(self):
        # Robots at 3 and 5 guard the region {3..5}; when the robot at 3
        # walks towards 5 it abandons node 3, and the contaminated edge
        # (2, 3) recontaminates the edge (3, 4) behind it.
        ring, _, state = make_state(10, [3, 5])
        after = Configuration.from_occupied(10, [4, 5])
        state.apply_moves([MoveRecord(0, 3, 4)], after)
        assert state.is_clear(4, 5)
        assert not state.is_clear(3, 4)

    def test_idle_step_keeps_state(self):
        ring, cfg, state = make_state(8, [0, 1])
        before = state.clear_edges
        state.apply_moves([], cfg)
        assert state.clear_edges == before


class TestSearchingMonitor:
    def test_monitor_records_initial_guarded_edges(self):
        cfg = Configuration.from_occupied(8, [0, 1, 2])
        monitor = SearchingMonitor()
        Simulator(SweepAlgorithm(), cfg, monitors=[monitor], chirality=True)
        counts = monitor.clearing_counts()
        assert counts[(0, 1)] == 1
        assert counts[(1, 2)] == 1
        assert counts[(4, 5)] == 0

    def test_monitor_tracks_history_during_run(self):
        cfg = Configuration.from_occupied(8, [0, 1, 2])
        monitor = SearchingMonitor()
        engine = Simulator(SweepAlgorithm(), cfg, monitors=[monitor], chirality=True)
        engine.run(40)
        assert monitor.every_edge_cleared(0)
        assert isinstance(monitor.edges_never_cleared(), tuple)
        last = monitor.last_clear_step()
        assert set(last) == set(Ring(8).edges())

    def test_monitor_requires_start(self):
        monitor = SearchingMonitor()
        try:
            monitor.state
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected RuntimeError")
