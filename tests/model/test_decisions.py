"""Unit tests for :mod:`repro.model.decisions` and :mod:`repro.model.robot`."""

import pytest

from repro.model.decisions import Decision, DecisionKind
from repro.model.robot import RobotState


class TestDecision:
    def test_idle(self):
        d = Decision.idle()
        assert d.is_idle
        assert not d.is_move
        assert d.kind is DecisionKind.IDLE
        assert d.toward_view is None

    @pytest.mark.parametrize("index", [0, 1])
    def test_move(self, index):
        d = Decision.move_toward(index)
        assert d.is_move
        assert not d.is_idle
        assert d.toward_view == index

    def test_move_requires_valid_index(self):
        with pytest.raises(ValueError):
            Decision.move_toward(2)
        with pytest.raises(ValueError):
            Decision(DecisionKind.MOVE, None)

    def test_idle_cannot_carry_index(self):
        with pytest.raises(ValueError):
            Decision(DecisionKind.IDLE, 0)

    def test_decisions_are_value_objects(self):
        assert Decision.idle() == Decision.idle()
        assert Decision.move_toward(1) == Decision.move_toward(1)
        assert Decision.move_toward(0) != Decision.move_toward(1)


class TestRobotState:
    def test_defaults(self):
        r = RobotState(robot_id=3, position=5)
        assert r.robot_id == 3
        assert r.position == 5
        assert not r.has_pending_move
        assert (r.looks, r.moves, r.idles) == (0, 0, 0)

    def test_pending_lifecycle(self):
        r = RobotState(robot_id=0, position=2, pending_target=3)
        assert r.has_pending_move
        r.clear_pending()
        assert not r.has_pending_move
        assert r.pending_target is None
