"""Unit tests for :mod:`repro.model.snapshot`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.errors import InvalidConfigurationError
from repro.core.ring import CCW, CW
from repro.model.snapshot import Snapshot


def snapshot_of(configuration, node, first_direction=CW, multiplicity_detection=False):
    """Build the snapshot a robot on ``node`` would receive (test helper)."""
    first = configuration.directed_view(node, first_direction)
    second = configuration.directed_view(node, -first_direction)
    return Snapshot(
        n=configuration.n,
        views=(first, second),
        on_multiplicity=multiplicity_detection and configuration.has_multiplicity(node),
    )


class TestValidation:
    def test_valid(self):
        snap = Snapshot(n=7, views=((0, 1, 3), (3, 1, 0)))
        assert snap.num_occupied == 3
        assert not snap.on_multiplicity

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidConfigurationError):
            Snapshot(n=7, views=((0, 1, 3), (3, 1)))

    def test_mismatched_sums(self):
        with pytest.raises(InvalidConfigurationError):
            Snapshot(n=7, views=((0, 1, 3), (3, 1, 1)))

    def test_ring_size_mismatch(self):
        with pytest.raises(InvalidConfigurationError):
            Snapshot(n=8, views=((0, 1, 3), (3, 1, 0)))


class TestViews:
    def test_min_view(self):
        snap = Snapshot(n=7, views=((3, 1, 0), (0, 1, 3)))
        assert snap.min_view == (0, 1, 3)

    def test_other_view(self):
        snap = Snapshot(n=7, views=((3, 1, 0), (0, 1, 3)))
        assert snap.other_view(0) == (0, 1, 3)
        assert snap.other_view(1) == (3, 1, 0)


class TestLocalReconstruction:
    def test_local_occupied_nodes(self):
        snap = Snapshot(n=9, views=((0, 0, 1, 4), (4, 1, 0, 0)))
        assert snap.local_occupied_nodes() == (0, 1, 2, 4)

    def test_local_configuration_is_isomorphic(self):
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        snap = snapshot_of(cfg, 4, CCW)
        local = snap.local_configuration()
        assert local.canonical_gaps() == cfg.canonical_gaps()

    @given(
        st.integers(min_value=5, max_value=12),
        st.data(),
    )
    def test_reconstruction_preserves_canonical_form(self, n, data):
        k = data.draw(st.integers(min_value=1, max_value=n - 1))
        occupied = data.draw(
            st.lists(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k, unique=True)
        )
        cfg = Configuration.from_occupied(n, occupied)
        node = data.draw(st.sampled_from(sorted(cfg.support)))
        direction = data.draw(st.sampled_from([CW, CCW]))
        snap = snapshot_of(cfg, node, direction)
        local = snap.local_configuration()
        assert local.canonical_gaps() == cfg.canonical_gaps()
        # The observing robot sits at local node 0.
        assert local.is_occupied(0)

    def test_single_robot_snapshot(self):
        cfg = Configuration.from_occupied(5, [2])
        snap = snapshot_of(cfg, 2)
        assert snap.views == ((4,), (4,))
        assert snap.local_occupied_nodes() == (0,)
