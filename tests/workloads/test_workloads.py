"""Tests for workload generators and experiment suites."""

import random

import pytest

from repro.core.errors import InvalidConfigurationError, UnsupportedParametersError
from repro.workloads.generators import (
    extremal_configurations,
    random_exclusive_configuration,
    random_rigid_configuration,
    rigid_configurations,
    sample_rigid_configurations,
)
from repro.workloads.suites import SUITES, get_suite


class TestGenerators:
    def test_random_exclusive(self):
        rng = random.Random(0)
        cfg = random_exclusive_configuration(10, 4, rng)
        assert cfg.n == 10
        assert cfg.k == 4
        assert cfg.is_exclusive

    def test_random_exclusive_validation(self):
        with pytest.raises(InvalidConfigurationError):
            random_exclusive_configuration(5, 6, random.Random(0))

    def test_random_rigid(self):
        rng = random.Random(1)
        for _ in range(20):
            cfg = random_rigid_configuration(14, 6, rng)
            assert cfg.is_rigid

    def test_random_rigid_rejects_impossible_parameters(self):
        with pytest.raises(UnsupportedParametersError):
            random_rigid_configuration(8, 6, random.Random(0))
        with pytest.raises(UnsupportedParametersError):
            random_rigid_configuration(8, 2, random.Random(0))

    def test_rigid_configurations_exhaustive(self):
        configs = rigid_configurations(9, 4)
        assert configs
        assert all(c.is_rigid for c in configs)

    def test_sample_rigid_deterministic(self):
        a = [c.canonical_gaps() for c in sample_rigid_configurations(13, 5, 4, seed=9)]
        b = [c.canonical_gaps() for c in sample_rigid_configurations(13, 5, 4, seed=9)]
        assert a == b

    def test_extremal_configurations(self):
        configs = list(extremal_configurations(8, 4))
        assert any(c.supermin_view() == (0, 1, 1, 2) for c in configs)  # Cs
        assert any(c.is_c_star() for c in configs)

    def test_extremal_configurations_large(self):
        configs = list(extremal_configurations(12, 5))
        assert configs
        assert all(c.n == 12 and c.k == 5 for c in configs)


class TestSuites:
    def test_all_suites_have_quick_and_full(self):
        for name, variants in SUITES.items():
            assert "quick" in variants and "full" in variants
            assert variants["quick"].name == name

    def test_get_suite(self):
        suite = get_suite("e3")
        assert suite.pairs
        assert all(len(pair) == 2 for pair in suite.pairs)

    def test_get_suite_unknown(self):
        with pytest.raises(KeyError):
            get_suite("e99")
        with pytest.raises(KeyError):
            get_suite("e1", "gigantic")

    def test_e3_pairs_are_in_the_proven_range(self):
        from repro.algorithms.ring_clearing import ring_clearing_supported

        for variant in ("quick", "full"):
            for k, n in get_suite("e3", variant).pairs:
                assert ring_clearing_supported(n, k)

    def test_e4_pairs_are_k_equals_n_minus_3(self):
        for variant in ("quick", "full"):
            for k, n in get_suite("e4", variant).pairs:
                assert k == n - 3 and n >= 10

    def test_e6_pairs_fit_the_game_solver(self):
        from repro.analysis.game import SearchGameSolver

        for k, n in get_suite("e6", "quick").pairs:
            SearchGameSolver(n, k)  # must not raise
