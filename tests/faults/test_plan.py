"""Tests for the deterministic fault-plan core (decide/arm/fire)."""

import os

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, KillPoint, TransientFaultError


def test_rejects_unknown_fault_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan(rates={"meteor": 0.5})
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan(sites={"unit:*": "meteor"})


def test_decide_is_deterministic_across_instances():
    a = FaultPlan(seed=7, rates={"crash": 0.3, "transient": 0.3})
    b = FaultPlan(seed=7, rates={"crash": 0.3, "transient": 0.3})
    sites = [f"unit:demo:u{i:03d}" for i in range(200)]
    assert [a.decide(s) for s in sites] == [b.decide(s) for s in sites]


def test_decide_varies_with_seed():
    sites = [f"unit:demo:u{i:03d}" for i in range(200)]
    a = [FaultPlan(seed=0, rates={"crash": 0.5}).decide(s) for s in sites]
    b = [FaultPlan(seed=1, rates={"crash": 0.5}).decide(s) for s in sites]
    assert a != b


def test_rates_roughly_respected():
    plan = FaultPlan(seed=3, rates={"transient": 0.25})
    decisions = [plan.decide(f"unit:demo:u{i:04d}") for i in range(2000)]
    hits = sum(1 for d in decisions if d == "transient")
    assert 0.15 < hits / len(decisions) < 0.35


def test_explicit_site_pattern_beats_rates():
    plan = FaultPlan(
        seed=0,
        rates={"crash": 1.0},
        sites={"unit:demo:u007*": "transient"},
    )
    assert plan.decide("unit:demo:u007-k4-n8") == "transient"
    assert plan.decide("unit:demo:u008-k4-n8") == "crash"


def test_unsupported_kind_does_not_fire():
    plan = FaultPlan(sites={"store.append:*": "crash"})
    # The store's append site does not support crash faults.
    assert plan.decide("store.append:demo:u001", supported=("torn_write", "kill")) is None


def test_fire_once_with_local_markers():
    plan = FaultPlan(sites={"unit:demo:*": "transient"})
    with pytest.raises(TransientFaultError):
        plan.fire("unit:demo:u001")
    # Second firing at the same site is suppressed: recovery sees health.
    assert plan.fire("unit:demo:u001") is None
    assert plan.fired_sites() == ["unit:demo:u001"]


def test_fire_once_markers_are_durable_across_instances(tmp_path):
    state = str(tmp_path / "state")
    first = FaultPlan(sites={"unit:demo:*": "transient"}, state_dir=state)
    with pytest.raises(TransientFaultError):
        first.fire("unit:demo:u001")
    # A fresh plan object (as a restarted process would build) sees the
    # durable marker and does not re-fire.
    second = FaultPlan(sites={"unit:demo:*": "transient"}, state_dir=state)
    assert second.fire("unit:demo:u001") is None
    assert second.fired_sites() == ["unit:demo:u001"]


def test_kill_point_raises_base_exception():
    plan = FaultPlan(sites={"cache.put.tmp_written:*": "kill"})
    with pytest.raises(KillPoint):
        plan.kill_point("cache.put.tmp_written:abc")
    # KillPoint must tunnel through `except Exception` like process death.
    assert not issubclass(KillPoint, Exception)


def test_slow_io_fires_and_returns(tmp_path):
    plan = FaultPlan(
        sites={"store.append:*": "slow_io"}, slow_s=0.0, state_dir=str(tmp_path)
    )
    assert plan.fire("store.append:demo:u001") == "slow_io"
    assert plan.fire("store.append:demo:u001") is None


def test_torn_write_is_returned_unperformed():
    plan = FaultPlan(sites={"store.append:*": "torn_write"})
    kind = plan.fire("store.append:demo:u001", supported=("torn_write",))
    assert kind == "torn_write"


def test_fault_kinds_registry_is_stable():
    assert FAULT_KINDS == ("crash", "hang", "transient", "torn_write", "slow_io", "kill")


def test_marker_files_use_hashed_names(tmp_path):
    state = str(tmp_path / "state")
    plan = FaultPlan(sites={"a/b:c": "transient"}, state_dir=state)
    with pytest.raises(TransientFaultError):
        plan.fire("a/b:c", supported=("transient",))
    names = os.listdir(state)
    assert len(names) == 1 and names[0].startswith("fired-")
    # Site names with path separators must not escape the state dir.
    assert "/" not in names[0]
