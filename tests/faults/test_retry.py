"""Tests for the retry policy and the executor's in-place retry loop."""

import pytest

from repro.campaign import build_cells_campaign, run_campaign
from repro.campaign.executor import execute_unit
from repro.faults import (
    DEFAULT_TRANSIENT_TYPES,
    DeadlineExceeded,
    RetryPolicy,
    TransientFaultError,
)

_FAST = RetryPolicy(base_delay_s=0.0, max_attempts=3)


def test_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError, match="delays"):
        RetryPolicy(base_delay_s=-1.0)


def test_transient_classification_by_type():
    policy = RetryPolicy()
    for name in DEFAULT_TRANSIENT_TYPES:
        assert policy.is_transient({"type": name, "message": ""})
    assert not policy.is_transient({"type": "ValueError", "message": ""})
    assert not policy.is_transient(None)


def test_explicit_retryable_flag_wins_both_ways():
    policy = RetryPolicy()
    assert policy.is_transient({"type": "ValueError", "retryable": True})
    assert not policy.is_transient({"type": "OSError", "retryable": False})


def test_transient_exception_classification():
    policy = RetryPolicy()
    assert policy.is_transient_exception(TransientFaultError("x"))
    assert policy.is_transient_exception(DeadlineExceeded("x", timeout_s=1.0))
    assert not policy.is_transient_exception(ValueError("x"))


def test_delay_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0)
    assert policy.delay_s("k", 1) == pytest.approx(0.1)
    assert policy.delay_s("k", 2) == pytest.approx(0.2)
    assert policy.delay_s("k", 3) == pytest.approx(0.4)
    assert policy.delay_s("k", 4) == pytest.approx(0.5)  # capped
    with pytest.raises(ValueError):
        policy.delay_s("k", 0)


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.5, seed=9)
    d1 = policy.delay_s("unit-a", 1)
    d2 = RetryPolicy(base_delay_s=1.0, multiplier=1.0, jitter=0.5, seed=9).delay_s(
        "unit-a", 1
    )
    assert d1 == d2  # pure function of (seed, key, attempt)
    assert 0.5 <= d1 <= 1.0
    assert policy.delay_s("unit-b", 1) != d1  # varies by key


# Module-level worker: fails transiently until the third call.
_CALLS = {"n": 0}


def _flaky_then_ok(unit):
    _CALLS["n"] += 1
    if _CALLS["n"] < 3:
        raise TransientFaultError("not yet")
    return {"row": [unit["k"], unit["n"]], "passed": True}


def _always_value_error(unit):
    raise ValueError("permanent")


def test_execute_unit_retries_transient_failures():
    _CALLS["n"] = 0
    unit = {"unit_id": "u0", "index": 0, "k": 4, "n": 8}
    record = execute_unit(_flaky_then_ok, unit, retry=_FAST)
    assert record["status"] == "ok"
    assert _CALLS["n"] == 3


def test_execute_unit_gives_up_after_max_attempts():
    _CALLS["n"] = 0
    unit = {"unit_id": "u0", "index": 0, "k": 4, "n": 8}
    record = execute_unit(
        _flaky_then_ok, unit, retry=RetryPolicy(max_attempts=2, base_delay_s=0.0)
    )
    assert record["status"] == "error"
    assert record["error"]["type"] == "TransientFaultError"
    assert record["error"]["retryable"] is True
    assert _CALLS["n"] == 2


def test_execute_unit_does_not_retry_permanent_errors():
    unit = {"unit_id": "u0", "index": 0, "k": 4, "n": 8}
    record = execute_unit(_always_value_error, unit, retry=_FAST)
    assert record["status"] == "error"
    assert record["error"]["type"] == "ValueError"
    assert record["error"]["retryable"] is False


def test_retry_does_not_change_summary_records():
    """A retried-to-success campaign records the same as a clean one."""
    campaign = build_cells_campaign(
        experiment="chaos",
        variant="retry",
        description="retry determinism",
        cells=[(4, 8), (4, 9)],
    )
    _CALLS["n"] = 0
    with_retry = run_campaign(campaign, _flaky_then_ok, retry=_FAST)
    records = [
        {k: v for k, v in r.items() if k != "duration_s"} for r in with_retry.records
    ]
    for record in records:
        assert record["status"] == "ok"
        assert "attempts" not in record  # retries leave no summary trace
