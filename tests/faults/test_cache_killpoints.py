"""Atomic-write kill-points: the cache never serves a torn entry."""

import json
import os

import pytest

from repro.faults import FaultPlan, KillPoint
from repro.runs.cache import ResultCache

KILL_POINTS = ("enter", "tmp_written", "replaced")

_KEY_A = "a" * 64
_KEY_B = "b" * 64
_DOC_OLD = {"payload": {"value": "old"}}
_DOC_NEW = {"payload": {"value": "new"}}


def _cache_killed_at(tmp_path, stage, key=_KEY_A):
    plan = FaultPlan(sites={f"cache.put.{stage}:{key}": "kill"})
    return ResultCache(str(tmp_path / "cache"), fault_plan=plan)


@pytest.mark.parametrize("stage", KILL_POINTS)
def test_kill_on_fresh_write_leaves_entry_or_nothing(tmp_path, stage):
    cache = _cache_killed_at(tmp_path, stage)
    with pytest.raises(KillPoint):
        cache.put(_KEY_A, _DOC_NEW)
    got = cache.get(_KEY_A)
    # Before the replace: no entry.  At/after the replace: the complete
    # new entry.  Never anything in between.
    if stage == "replaced":
        assert got == _DOC_NEW
    else:
        assert got is None


@pytest.mark.parametrize("stage", KILL_POINTS)
def test_kill_on_overwrite_leaves_old_or_new_never_torn(tmp_path, stage):
    cache = _cache_killed_at(tmp_path, stage)
    # Seed the old entry through a *clean* put (the kill-point site is
    # keyed to _KEY_A's put; firing is once-only anyway).
    clean = ResultCache(str(tmp_path / "cache"))
    clean.put(_KEY_A, _DOC_OLD)
    with pytest.raises(KillPoint):
        cache.put(_KEY_A, _DOC_NEW)
    got = cache.get(_KEY_A)
    assert got in (_DOC_OLD, _DOC_NEW)
    if stage == "replaced":
        assert got == _DOC_NEW
    else:
        assert got == _DOC_OLD
    # Whatever survived is complete, valid JSON on disk.
    path = cache._path(_KEY_A)
    with open(path, "r", encoding="utf-8") as handle:
        assert json.load(handle) in (_DOC_OLD, _DOC_NEW)


@pytest.mark.parametrize("stage", ("enter", "tmp_written"))
def test_interrupted_put_can_be_cleanly_retried(tmp_path, stage):
    cache = _cache_killed_at(tmp_path, stage)
    with pytest.raises(KillPoint):
        cache.put(_KEY_A, _DOC_NEW)
    # The site fired once; the retry (as recovery would issue) succeeds.
    assert cache.put(_KEY_A, _DOC_NEW)
    assert cache.get(_KEY_A) == _DOC_NEW


def test_orphan_tmp_file_is_invisible_to_readers_and_lru(tmp_path):
    cache = _cache_killed_at(tmp_path, "tmp_written")
    with pytest.raises(KillPoint):
        cache.put(_KEY_A, _DOC_NEW)
    # The simulated death leaves the temp file behind, like a real kill.
    bucket = os.path.join(cache.root, _KEY_A[:2])
    orphans = [n for n in os.listdir(bucket) if n.startswith(".tmp-")]
    assert orphans, "a killed write must leave its tmp file (as kill -9 would)"
    # Readers, key listings and the LRU census all ignore it.
    assert cache.get(_KEY_A) is None
    assert len(cache) == 0
    assert cache.keys() == []


def test_lru_eviction_stays_correct_after_kills(tmp_path):
    plan = FaultPlan(sites={f"cache.put.tmp_written:{_KEY_A}": "kill"})
    cache = ResultCache(str(tmp_path / "cache"), max_entries=2, fault_plan=plan)
    with pytest.raises(KillPoint):
        cache.put(_KEY_A, _DOC_NEW)
    # The killed write must not count against the bound: two more puts
    # fit without evicting each other.
    cache.put(_KEY_B, {"payload": 1})
    cache.put("c" * 64, {"payload": 2})
    assert sorted(cache.keys()) == sorted([_KEY_B, "c" * 64])
    # A third live entry now evicts the least-recently-used one.
    cache.put("d" * 64, {"payload": 3})
    assert len(cache) == 2
    assert "d" * 64 in cache.keys()


def test_slow_io_site_delays_but_completes(tmp_path):
    plan = FaultPlan(sites={"cache.put.enter:*": "slow_io"}, slow_s=0.0)
    cache = ResultCache(str(tmp_path / "cache"), fault_plan=plan)
    cache.put(_KEY_A, _DOC_NEW)
    assert cache.get(_KEY_A) == _DOC_NEW


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    """A torn entry somehow on disk (pre-fix writer, cosmic ray) never
    reaches a reader: it reads as a miss and is deleted."""
    cache = ResultCache(str(tmp_path / "cache"))
    path = cache._path(_KEY_A)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"payload": {"val')  # torn JSON
    assert cache.get(_KEY_A) is None
    assert not os.path.exists(path)
