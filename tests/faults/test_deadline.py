"""Deadline enforcement: hung work is killed, never awaited forever."""

import time

import pytest

from repro.campaign import build_cells_campaign, run_campaign
from repro.faults import DeadlineExceeded, call_with_deadline


# Module-level callables: the deadline wrapper ships them to a worker
# process by reference.
def _quick_add(a, b):
    return a + b


def _sleep_forever():
    time.sleep(3600)


def _sleepy_worker(unit):
    # Hang on exactly one unit; the rest complete instantly.
    if unit["k"] == 4 and unit["n"] == 8:
        time.sleep(3600)
    return {"row": [unit["k"], unit["n"]], "passed": True}


def test_inline_when_no_timeout():
    assert call_with_deadline(_quick_add, (2, 3)) == 5


def test_result_within_deadline():
    assert call_with_deadline(_quick_add, (2, 3), timeout=30.0) == 5


def test_rejects_non_positive_timeout():
    with pytest.raises(ValueError, match="timeout"):
        call_with_deadline(_quick_add, (2, 3), timeout=0.0)


def test_hung_call_is_killed_within_deadline():
    start = time.monotonic()
    with pytest.raises(DeadlineExceeded) as excinfo:
        call_with_deadline(_sleep_forever, timeout=1.0, what="hang probe")
    wall = time.monotonic() - start
    # The acceptance bound: no unbounded wait.  Allow generous slack for
    # pool spin-up and SIGTERM delivery, but nothing near the hang.
    assert wall < 30.0
    assert excinfo.value.timeout_s == 1.0
    assert excinfo.value.retryable is True
    assert "hang probe" in str(excinfo.value)


def test_campaign_hung_unit_reaped_and_recorded_as_timeout():
    """A hung campaign unit is killed at the deadline and marked timeout."""
    campaign = build_cells_campaign(
        experiment="chaos",
        variant="deadline",
        description="hung unit reaping",
        cells=[(4, 8), (4, 9), (5, 9)],
    )
    start = time.monotonic()
    report = run_campaign(campaign, _sleepy_worker, jobs=2, timeout=1.5)
    wall = time.monotonic() - start
    assert wall < 60.0  # two attempts (pool + isolation), never unbounded
    by_unit = {r["unit_id"]: r for r in report.records}
    statuses = {uid: r["status"] for uid, r in by_unit.items()}
    timed_out = [uid for uid, s in statuses.items() if s == "timeout"]
    assert len(timed_out) == 1
    record = by_unit[timed_out[0]]
    assert record["k"] == 4 and record["n"] == 8
    assert record["error"]["type"] == "DeadlineExceeded"
    assert record["error"]["retryable"] is True
    assert record["payload"] is None
    # The healthy bystander units all completed normally.
    assert sum(1 for s in statuses.values() if s == "ok") == 2


def test_serial_campaign_timeout_also_enforced():
    """jobs=1 with a timeout still runs through the killable pool."""
    campaign = build_cells_campaign(
        experiment="chaos",
        variant="deadline-serial",
        description="serial deadline",
        cells=[(4, 8), (4, 9)],
    )
    start = time.monotonic()
    report = run_campaign(campaign, _sleepy_worker, jobs=1, timeout=1.5)
    wall = time.monotonic() - start
    assert wall < 60.0
    statuses = sorted(r["status"] for r in report.records)
    assert statuses == ["ok", "timeout"]
