"""The chaos invariant: faulted-and-recovered == fault-free, byte for byte.

Every test here executes the same campaign twice — once clean, once
under an armed :class:`~repro.faults.FaultPlan` — and asserts the
recovered run's ``summary.json`` is byte-identical to the clean one.
``REPRO_FAULT_SEED`` (default 0) selects the seeded-decision stream, so
CI can sweep a seed matrix without touching the code.
"""

import os
import time

import pytest

from repro.campaign import ResultStore, build_cells_campaign, run_campaign
from repro.faults import FaultPlan, KillPoint, RetryPolicy, demo_worker

#: Seed of the fault plan's decision stream; CI sweeps this via the
#: environment (chaos job matrix), defaulting to 0 locally.
SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))

_CELLS = [(k, n) for n in (8, 9, 10) for k in (3, 4, 5)]

_FAST_RETRY = RetryPolicy(base_delay_s=0.0, seed=SEED)


def _campaign(tag):
    return build_cells_campaign(
        experiment="chaos",
        variant=tag,
        description=f"chaos determinism ({tag})",
        cells=_CELLS,
    )


def _run_summary(tmp_path, tag, name, **kwargs):
    """Run the campaign into a fresh store; return the summary bytes."""
    store = ResultStore(str(tmp_path / name), fault_plan=kwargs.get("fault_plan"))
    campaign = _campaign(tag)
    run_campaign(campaign, demo_worker, store=store, **kwargs)
    with open(store.summary_path(campaign.name), "rb") as handle:
        return handle.read()


def test_crash_faults_recover_byte_identical(tmp_path):
    clean = _run_summary(tmp_path, "crash", "clean")
    plan = FaultPlan(
        seed=SEED, rates={"crash": 0.4}, state_dir=str(tmp_path / "state")
    )
    faulted = _run_summary(tmp_path, "crash", "faulted", jobs=2, fault_plan=plan)
    assert plan.fired_sites(), "seeded rates must hit at least one of 9 sites"
    assert faulted == clean


def test_transient_faults_recover_byte_identical(tmp_path):
    clean = _run_summary(tmp_path, "transient", "clean")
    plan = FaultPlan(
        seed=SEED, rates={"transient": 0.5}, state_dir=str(tmp_path / "state")
    )
    faulted = _run_summary(
        tmp_path, "transient", "faulted", fault_plan=plan, retry=_FAST_RETRY
    )
    assert plan.fired_sites()
    assert faulted == clean


def test_hang_faults_recover_byte_identical_within_deadline(tmp_path):
    clean = _run_summary(tmp_path, "hang", "clean")
    plan = FaultPlan(
        seed=SEED,
        sites={"unit:chaos-hang:u004*": "hang"},
        hang_s=120.0,
        state_dir=str(tmp_path / "state"),
    )
    start = time.monotonic()
    faulted = _run_summary(
        tmp_path, "hang", "faulted", jobs=2, timeout=2.0, fault_plan=plan
    )
    wall = time.monotonic() - start
    assert wall < 60.0, "hung worker must be reaped at the deadline, not awaited"
    assert plan.fired_sites() == ["unit:chaos-hang:u004-k004-n009"]
    assert faulted == clean


def test_slow_io_faults_recover_byte_identical(tmp_path):
    clean = _run_summary(tmp_path, "slow", "clean")
    plan = FaultPlan(
        seed=SEED, rates={"slow_io": 0.6}, slow_s=0.01, state_dir=str(tmp_path / "state")
    )
    faulted = _run_summary(tmp_path, "slow", "faulted", jobs=2, fault_plan=plan)
    assert plan.fired_sites()
    assert faulted == clean


def test_torn_write_then_resume_byte_identical(tmp_path):
    """A torn store append kills the run; a resume heals it completely."""
    clean = _run_summary(tmp_path, "torn", "clean")
    plan = FaultPlan(
        seed=SEED,
        sites={"store.append:chaos-torn:u003*": "torn_write"},
        state_dir=str(tmp_path / "state"),
    )
    campaign = _campaign("torn")
    store = ResultStore(str(tmp_path / "faulted"), fault_plan=plan)
    with pytest.raises(KillPoint):
        run_campaign(campaign, demo_worker, store=store)
    # The dying write left a torn trailing line behind.
    shard = os.path.join(store.campaign_dir(campaign.name), "shard-0000.jsonl")
    with open(shard, "r", encoding="utf-8") as handle:
        assert not handle.read().endswith("\n")
    # Restart: a fresh, fault-free store resumes and completes the run.
    resumed = ResultStore(str(tmp_path / "faulted"))
    run_campaign(campaign, demo_worker, store=resumed)
    with open(resumed.summary_path(campaign.name), "rb") as handle:
        assert handle.read() == clean


def test_mixed_fault_storm_recovers_byte_identical(tmp_path):
    """All recoverable kinds at once, in parallel, under a deadline."""
    clean = _run_summary(tmp_path, "storm", "clean")
    plan = FaultPlan(
        seed=SEED,
        rates={"crash": 0.2, "transient": 0.2, "hang": 0.1, "slow_io": 0.2},
        hang_s=120.0,
        slow_s=0.005,
        state_dir=str(tmp_path / "state"),
    )
    start = time.monotonic()
    faulted = _run_summary(
        tmp_path,
        "storm",
        "faulted",
        jobs=2,
        timeout=3.0,
        retry=_FAST_RETRY,
        fault_plan=plan,
    )
    wall = time.monotonic() - start
    assert wall < 120.0
    assert faulted == clean


def test_fault_plan_decisions_identical_across_parallelism(tmp_path):
    """jobs=1 and jobs=2 under the same plan produce the same summary.

    Faults fire per *site*, not per schedule: the set of injected
    faults — and therefore the recovered output — must not depend on
    how the units were distributed over workers.
    """
    plan_a = FaultPlan(
        seed=SEED, rates={"transient": 0.4}, state_dir=str(tmp_path / "sa")
    )
    plan_b = FaultPlan(
        seed=SEED, rates={"transient": 0.4}, state_dir=str(tmp_path / "sb")
    )
    serial = _run_summary(
        tmp_path, "par", "serial", fault_plan=plan_a, retry=_FAST_RETRY
    )
    parallel = _run_summary(
        tmp_path, "par", "parallel", jobs=2, fault_plan=plan_b, retry=_FAST_RETRY
    )
    assert plan_a.fired_sites() == plan_b.fired_sites()
    assert serial == parallel
