"""Result-store corruption tolerance: quarantine, don't die."""

import json
import os

import pytest

from repro.campaign import ResultStore, build_cells_campaign, run_campaign
from repro.faults import demo_worker


def _record(unit_id, index, k, n):
    return {
        "unit_id": unit_id,
        "index": index,
        "k": k,
        "n": n,
        "status": "ok",
        "payload": {"row": [k, n], "passed": True},
        "error": None,
        "duration_s": 0.0,
    }


def test_torn_trailing_line_is_dropped_silently(tmp_path):
    store = ResultStore(str(tmp_path))
    store.append("c", _record("u000", 0, 3, 8))
    shard = store._shard_path("c", 0)
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"unit_id": "u001", "status": "o')  # interrupted write
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a torn tail is normal, not a warning
        records = store.iter_records("c")
    assert [r["unit_id"] for r in records] == ["u000"]
    assert not os.path.exists(store.quarantine_path("c"))


def test_corrupt_midfile_line_is_quarantined_with_warning(tmp_path):
    store = ResultStore(str(tmp_path))
    store.append("c", _record("u000", 0, 3, 8))
    store.append("c", _record("u001", 1, 4, 8))
    shard = store._shard_path("c", 0)
    # Corrupt the *first* record in place (bit rot), keeping the newline.
    with open(shard, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines[0] = lines[0][: len(lines[0]) // 2].rstrip("\n") + "\n"
    with open(shard, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.warns(RuntimeWarning, match="quarantined corrupt record"):
        records = store.iter_records("c")
    # The healthy record survives; the rotten one is quarantined.
    assert [r["unit_id"] for r in records] == ["u001"]
    with open(store.quarantine_path("c"), "r", encoding="utf-8") as handle:
        quarantined = handle.read()
    assert "shard-0000.jsonl:1" in quarantined


def test_quarantine_is_deduplicated_across_loads(tmp_path):
    store = ResultStore(str(tmp_path))
    store.append("c", _record("u000", 0, 3, 8))
    store.append("c", _record("u001", 1, 4, 8))
    shard = store._shard_path("c", 0)
    with open(shard, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines[0] = "not json at all\n"
    with open(shard, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.warns(RuntimeWarning):
        store.iter_records("c")
    with pytest.warns(RuntimeWarning):
        store.iter_records("c")
    with open(store.quarantine_path("c"), "r", encoding="utf-8") as handle:
        assert handle.read().count("not json at all") == 1


def test_non_dict_json_line_is_quarantined(tmp_path):
    store = ResultStore(str(tmp_path))
    store.append("c", _record("u000", 0, 3, 8))
    store.append("c", _record("u001", 1, 4, 8))
    shard = store._shard_path("c", 0)
    with open(shard, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines[0] = '[1, 2, 3]\n'  # valid JSON, wrong shape
    with open(shard, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.warns(RuntimeWarning):
        records = store.iter_records("c")
    assert [r["unit_id"] for r in records] == ["u001"]


def test_resume_rebuilds_quarantined_unit_byte_identically(tmp_path):
    """The affected unit is simply re-run; the summary fully heals."""
    campaign = build_cells_campaign(
        experiment="chaos",
        variant="rot",
        description="quarantine resume",
        cells=[(3, 8), (4, 8), (5, 8)],
    )
    clean_store = ResultStore(str(tmp_path / "clean"))
    run_campaign(campaign, demo_worker, store=clean_store)
    with open(clean_store.summary_path(campaign.name), "rb") as handle:
        clean = handle.read()

    rotten_store = ResultStore(str(tmp_path / "rot"))
    run_campaign(campaign, demo_worker, store=rotten_store)
    shard = rotten_store._shard_path(campaign.name, 0)
    with open(shard, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    victim = json.loads(lines[1])["unit_id"]
    lines[1] = lines[1][: len(lines[1]) // 3].rstrip("\n") + "\n"
    with open(shard, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    # Resume with a fresh store object, as a restarted process would.
    resumed = ResultStore(str(tmp_path / "rot"))
    with pytest.warns(RuntimeWarning, match="quarantined"):
        report = run_campaign(campaign, demo_worker, store=resumed)
    assert victim in {r["unit_id"] for r in report.records}
    with open(resumed.summary_path(campaign.name), "rb") as handle:
        # iter_records warns again on the still-rotten line during the
        # final summary rebuild; the output itself is fully healed.
        assert handle.read() == clean


def test_append_and_reload_roundtrip_counts_shards(tmp_path):
    store = ResultStore(str(tmp_path), shard_size=2)
    for i in range(5):
        store.append("c", _record(f"u{i:03d}", i, 3, 8 + i))
    fresh = ResultStore(str(tmp_path), shard_size=2)
    assert len(fresh.iter_records("c")) == 5
    assert len(fresh._shard_paths("c")) == 3
