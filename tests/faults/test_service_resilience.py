"""Service resilience: drain, back-pressure headers, health states, deadlines."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, RetryPolicy
from repro.service import RunService, ServiceBusy, ServiceDraining, create_server

TINY_SPEC = {
    "kind": "simulate",
    "algorithm": "align",
    "n": 10,
    "k": 4,
    "steps": 200,
    "seed": 0,
    "stop": "c_star",
}

#: A spec whose simulation is heavy enough (a few seconds) to hold a
#: worker slot for a while on any machine: a perpetual task, so it
#: never stops early, with a step budget tuned to run for seconds.
SLOW_SPEC = {
    "kind": "simulate",
    "algorithm": "ring-clearing",
    "n": 14,
    "k": 9,
    "steps": 100000,
    "seed": 1,
}


def _serve(service):
    srv = create_server(port=0, service=service)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    return srv, f"http://127.0.0.1:{srv.server_address[1]}"


def _get(base, path):
    with urllib.request.urlopen(f"{base}{path}") as response:
        return response.status, json.load(response)


def _post_raw(base, document):
    request = urllib.request.Request(
        f"{base}/v1/runs",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    return urllib.request.urlopen(request)


class TestDrain:
    def test_drain_rejects_new_submissions_with_503(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"), retry_after_s=7.0)
        srv, base = _serve(service)
        try:
            service.drain()
            assert service.draining
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post_raw(base, TINY_SPEC)
            error = excinfo.value
            assert error.code == 503
            # Machine-parseable back-off in both header and body.
            assert error.headers["Retry-After"] == "7"
            body = json.load(error)
            assert body["retry_after_s"] == 7.0
            assert "draining" in body["error"]
        finally:
            srv.shutdown()
            srv.server_close()

    def test_drain_finishes_in_flight_runs(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"), workers=1)
        srv, base = _serve(service)
        try:
            with _post_raw(base, TINY_SPEC) as response:
                run_id = json.load(response)["run_id"]
            service.drain()
            assert service.wait_idle(timeout=60.0)
            status, view = _get(base, f"/v1/runs/{run_id}")
            assert status == 200
            assert view["status"] == "done"
        finally:
            srv.shutdown()
            srv.server_close()

    def test_drain_is_idempotent_and_direct_submit_raises(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"))
        service.drain()
        service.drain()
        with pytest.raises(ServiceDraining):
            service.submit(TINY_SPEC)

    def test_wait_idle_times_out_with_unsettled_work(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"), workers=1)
        service.submit(SLOW_SPEC)
        assert service.wait_idle(timeout=0.05) is False
        service.drain()
        assert service.wait_idle(timeout=120.0)
        service.shutdown()


class TestHealthStates:
    def test_ok_then_draining(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"))
        assert service.health()["status"] == "ok"
        service.drain()
        assert service.health()["status"] == "draining"

    def test_saturated_when_backlog_full(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"), workers=1, max_runs=1)
        service.submit(SLOW_SPEC)
        assert service.health()["status"] == "saturated"
        with pytest.raises(ServiceBusy):
            service.submit(TINY_SPEC)
        service.drain()
        service.wait_idle(timeout=120.0)
        service.shutdown()

    def test_429_carries_retry_after(self, tmp_path):
        service = RunService(
            cache=str(tmp_path / "cache"), workers=1, max_runs=1, retry_after_s=2.5
        )
        srv, base = _serve(service)
        try:
            with _post_raw(base, SLOW_SPEC):
                pass
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post_raw(base, TINY_SPEC)
            error = excinfo.value
            assert error.code == 429
            # Retry-After is integral seconds, rounded *up* from 2.5.
            assert error.headers["Retry-After"] == "3"
            body = json.load(error)
            assert body["retry_after_s"] == 2.5
        finally:
            service.drain()
            service.wait_idle(timeout=120.0)
            srv.shutdown()
            srv.server_close()


class TestRunDeadline:
    def test_hung_run_is_killed_and_reported_retryable(self, tmp_path):
        service = RunService(cache=str(tmp_path / "cache"), run_timeout=1.0)
        view, created = service.submit(SLOW_SPEC)
        assert created
        start = time.monotonic()
        assert service.wait_idle(timeout=60.0), "deadline must reap the run"
        assert time.monotonic() - start < 60.0
        status = service.status(view["run_id"])
        assert status["status"] == "error"
        assert status["error"]["type"] == "DeadlineExceeded"
        # A deadline error is transient: resubmission schedules a fresh
        # attempt instead of replaying the stale failure.
        _, created_again = service.submit(SLOW_SPEC)
        assert created_again
        service.drain()
        service.wait_idle(timeout=60.0)
        service.shutdown()

    def test_rejects_bad_configuration(self, tmp_path):
        with pytest.raises(ValueError, match="run_timeout"):
            RunService(run_timeout=0.0)
        with pytest.raises(ValueError, match="retry_after_s"):
            RunService(retry_after_s=0.0)


class TestServiceFaultInjection:
    def test_injected_transient_is_surfaced_and_retryable(self, tmp_path):
        plan = FaultPlan(sites={"service.run:*": "transient"})
        service = RunService(
            cache=str(tmp_path / "cache"),
            fault_plan=plan,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        view, _ = service.submit(TINY_SPEC)
        service.wait_idle(timeout=60.0)
        status = service.status(view["run_id"])
        assert status["status"] == "error"
        assert status["error"]["type"] == "TransientFaultError"
        # The site fired once; resubmission now runs clean and succeeds.
        view2, created = service.submit(TINY_SPEC)
        assert created
        service.wait_idle(timeout=60.0)
        assert service.status(view2["run_id"])["status"] == "done"
        service.shutdown()

    def test_faulted_result_equals_clean_result(self, tmp_path):
        clean = RunService(cache=str(tmp_path / "c1"))
        view, _ = clean.submit(TINY_SPEC)
        clean.wait_idle(timeout=60.0)
        clean_result = clean.status(view["run_id"])["result"]
        clean.shutdown()

        plan = FaultPlan(sites={"service.run:*": "transient"})
        faulted = RunService(
            cache=str(tmp_path / "c2"),
            fault_plan=plan,
            retry=RetryPolicy(base_delay_s=0.0),
        )
        faulted.submit(TINY_SPEC)
        faulted.wait_idle(timeout=60.0)
        view2, _ = faulted.submit(TINY_SPEC)  # second attempt, site spent
        faulted.wait_idle(timeout=60.0)
        assert faulted.status(view2["run_id"])["result"] == clean_result
        faulted.shutdown()
