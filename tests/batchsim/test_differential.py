"""Differential certification: batched traces == per-run traces, bytewise.

Every test runs the same (algorithm, initial configuration, scheduler,
options) workload through the incremental :class:`Simulator` and through
:class:`BatchEngine` and compares ``Trace.canonical_bytes()`` — the byte
representation hashed into run payloads and summaries — or, where events
are not recorded, the aggregate counters.  The matrix covers every
scheduler, fast-path (pure global rule) and slow-path algorithms, both
storage backends, collision and precondition aborts, and the periodic
orbit fast-forward.
"""

import random

import pytest

from repro.algorithms import (
    AlignAlgorithm,
    GatheringAlgorithm,
    IdleAlgorithm,
    RingClearingAlgorithm,
    SweepAlgorithm,
)
from repro.batchsim import BatchEngine
from repro.batchsim.backends import available_backends
from repro.core.configuration import Configuration
from repro.core.errors import SimulationLimitError
from repro.scheduler import (
    Activation,
    ActivationKind,
    AsynchronousScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    SemiSynchronousScheduler,
    SequentialScheduler,
    SynchronousScheduler,
)
from repro.simulator.engine import Simulator
from repro.simulator.options import EngineOptions
from repro.workloads.generators import random_rigid_configuration

BACKENDS = list(available_backends())

SCHEDULER_FACTORIES = {
    "round_robin": lambda i: SequentialScheduler(),
    "round_robin_subclass": lambda i: RoundRobinScheduler(),
    "sequential_random": lambda i: SequentialScheduler(policy="random", seed=7 + i),
    "synchronous": lambda i: SynchronousScheduler(),
    "semi_synchronous": lambda i: SemiSynchronousScheduler(seed=31 + i),
    "asynchronous": lambda i: AsynchronousScheduler(seed=97 + i),
}

ALGORITHMS = {
    # (factory, options): fast path (pure global rules) and slow path.
    "align": (AlignAlgorithm, EngineOptions()),
    "sweep": (SweepAlgorithm, EngineOptions(collision_policy="record")),
    "idle": (IdleAlgorithm, EngineOptions()),
    "gathering": (
        GatheringAlgorithm,
        EngineOptions(exclusive=False, multiplicity_detection=True),
    ),
}


def sample_configurations(n, k, count, seed0=1000):
    return [
        random_rigid_configuration(n, k, random.Random(seed0 + i))
        for i in range(count)
    ]


def per_run_outcome(algorithm_factory, configuration, scheduler, options, steps):
    """(exception-type-name, message-or-None, canonical trace bytes)."""
    simulator = Simulator(
        algorithm_factory(), configuration, scheduler=scheduler, options=options
    )
    try:
        simulator.run(steps)
        return (None, None, simulator.trace.canonical_bytes())
    except Exception as error:  # noqa: BLE001 - parity includes the abort
        return (type(error).__name__, str(error), simulator.trace.canonical_bytes())


def batch_outcome(algorithm_factory, configuration, scheduler_factory, options, steps, backend):
    engine = BatchEngine(
        algorithm_factory(),
        [configuration],
        scheduler_factory=scheduler_factory,
        options=options,
        backend=backend,
    )
    try:
        engine.run(steps)
        return (None, None, engine.lane_trace(0).canonical_bytes())
    except Exception as error:  # noqa: BLE001
        return (type(error).__name__, str(error), engine.lane_trace(0).canonical_bytes())


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULER_FACTORIES))
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
class TestByteIdentity:
    def test_traces_byte_identical(self, algorithm_name, scheduler_name, backend):
        algorithm_factory, options = ALGORITHMS[algorithm_name]
        scheduler_factory = SCHEDULER_FACTORIES[scheduler_name]
        configurations = sample_configurations(12, 5, 4)
        reference = [
            per_run_outcome(
                algorithm_factory, configuration, scheduler_factory(i), options, 60
            )
            for i, configuration in enumerate(configurations)
        ]
        engine = BatchEngine(
            algorithm_factory(),
            configurations,
            scheduler_factory=scheduler_factory,
            options=options,
            backend=backend,
        )
        engine.run(60)
        batched = [
            (None, None, engine.lane_trace(i).canonical_bytes())
            for i in range(engine.num_lanes)
        ]
        assert batched == reference


@pytest.mark.parametrize("backend", BACKENDS)
class TestAbortParity:
    def test_collision_abort_matches(self, backend):
        """Sweep under FSYNC collides; type, message and trace must match."""
        configurations = sample_configurations(12, 5, 6)
        options = EngineOptions()
        outcomes = set()
        for i, configuration in enumerate(configurations):
            reference = per_run_outcome(
                SweepAlgorithm, configuration, SynchronousScheduler(), options, 60
            )
            got = batch_outcome(
                SweepAlgorithm,
                configuration,
                lambda i: SynchronousScheduler(),
                options,
                60,
                backend,
            )
            assert got == reference
            outcomes.add(reference[0])
        assert "CollisionError" in outcomes, "workload never collided; test is vacuous"

    def test_limit_error_on_unreachable_goal(self, backend):
        configurations = sample_configurations(12, 5, 2)
        engine = BatchEngine(IdleAlgorithm(), configurations, backend=backend)
        with pytest.raises(SimulationLimitError, match="goal not reached within 5 steps"):
            engine.run_until_configuration(lambda c: c.is_c_star(), max_steps=5)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("invariant", [False, True])
class TestRunUntil:
    def test_goal_reached_matches_per_run(self, backend, invariant):
        configurations = sample_configurations(16, 5, 6, seed0=300)
        reference = []
        for configuration in configurations:
            simulator = Simulator(AlignAlgorithm(), configuration)
            simulator.run_until(
                lambda e: e.configuration.is_c_star(), max_steps=4000
            )
            reference.append(simulator.trace.canonical_bytes())
        engine = BatchEngine(AlignAlgorithm(), configurations, backend=backend)
        engine.run_until_configuration(
            lambda c: c.is_c_star(), max_steps=4000, invariant=invariant
        )
        assert [
            engine.lane_trace(i).canonical_bytes() for i in range(engine.num_lanes)
        ] == reference
        assert {
            engine.lane(i).stopped_reason for i in range(engine.num_lanes)
        } == {"goal-reached"}

    def test_goal_already_satisfied(self, backend, invariant):
        star = Configuration.from_occupied(9, [0, 1, 2, 3, 5])
        assert star.is_c_star()
        simulator = Simulator(AlignAlgorithm(), star)
        simulator.run_until(lambda e: e.configuration.is_c_star(), max_steps=10)
        engine = BatchEngine(AlignAlgorithm(), [star], backend=backend)
        engine.run_until_configuration(
            lambda c: c.is_c_star(), max_steps=10, invariant=invariant
        )
        assert engine.lane(0).stopped_reason == "goal-already-satisfied"
        assert (
            engine.lane_trace(0).canonical_bytes()
            == simulator.trace.canonical_bytes()
        )


@pytest.mark.parametrize("backend", BACKENDS)
class TestScriptedScheduler:
    def test_look_move_cycle_script(self, backend):
        script = [
            Activation(kind=ActivationKind.LOOK, robots=(0, 2)),
            Activation(kind=ActivationKind.MOVE, robots=(0,)),
            Activation(kind=ActivationKind.CYCLE, robots=(1, 3)),
            Activation(kind=ActivationKind.MOVE, robots=(2,)),
        ]
        configurations = sample_configurations(12, 5, 4)
        reference = []
        for configuration in configurations:
            simulator = Simulator(
                AlignAlgorithm(), configuration, scheduler=ScriptedScheduler(script)
            )
            simulator.run(12)
            reference.append(simulator.trace.canonical_bytes())
        engine = BatchEngine(
            AlignAlgorithm(),
            configurations,
            scheduler_factory=lambda i: ScriptedScheduler(script),
            backend=backend,
        )
        engine.run(12)
        assert [
            engine.lane_trace(i).canonical_bytes() for i in range(engine.num_lanes)
        ] == reference


@pytest.mark.parametrize("backend", BACKENDS)
class TestOrbitFastForward:
    """Perpetual runs with record_events=False skip full periods.

    Traces are unavailable, but every aggregate the campaign layer
    consumes — total moves, step count, final occupancy, final robot
    positions, stopped reason — must equal the per-run engine's.
    """

    def test_perpetual_aggregates_match(self, backend):
        n, k = 13, 5
        steps = 30 * n * k
        configurations = sample_configurations(n, k, 4)
        reference = []
        for configuration in configurations:
            simulator = Simulator(RingClearingAlgorithm(), configuration)
            simulator.run(steps)
            reference.append(
                (
                    sum(len(e.moves) for e in simulator.trace.events),
                    simulator.step_count,
                    simulator.configuration.counts,
                    tuple(simulator.robot(j).position for j in range(k)),
                    simulator.trace.stopped_reason,
                )
            )
        engine = BatchEngine(
            RingClearingAlgorithm(),
            configurations,
            record_events=False,
            backend=backend,
        )
        engine.run(steps)
        batched = [
            (
                engine.lane(i).total_moves,
                engine.lane(i).step_count,
                engine.lane(i).counts_tuple,
                tuple(engine.lane(i).positions),
                engine.lane(i).stopped_reason,
            )
            for i in range(engine.num_lanes)
        ]
        assert batched == reference

    def test_skip_actually_engaged(self, backend):
        """Guard against silently losing the optimisation."""
        n, k = 13, 5
        configuration = sample_configurations(n, k, 1)[0]
        engine = BatchEngine(
            RingClearingAlgorithm(), [configuration], record_events=False, backend=backend
        )
        engine.run(30 * n * k)
        # Round-boundary memory must be bounded by the orbit, far below
        # the number of rounds executed.
        assert 0 < len(engine.lane(0).orbit) < (30 * n * k) // k

    def test_recorded_runs_never_skip(self, backend):
        n, k = 13, 5
        steps = 10 * n * k
        configuration = sample_configurations(n, k, 1)[0]
        simulator = Simulator(RingClearingAlgorithm(), configuration)
        simulator.run(steps)
        engine = BatchEngine(RingClearingAlgorithm(), [configuration], backend=backend)
        engine.run(steps)
        assert not engine.lane(0).orbit
        assert (
            engine.lane_trace(0).canonical_bytes()
            == simulator.trace.canonical_bytes()
        )

    def test_two_phase_run_matches(self, backend):
        """run() twice (budget extension) stays aligned with per-run."""
        n, k = 13, 5
        configuration = sample_configurations(n, k, 1)[0]
        simulator = Simulator(RingClearingAlgorithm(), configuration)
        simulator.run(4 * n * k)
        simulator.run(26 * n * k)
        engine = BatchEngine(
            RingClearingAlgorithm(), [configuration], record_events=False, backend=backend
        )
        engine.run(4 * n * k)
        engine.run(26 * n * k)
        assert engine.lane(0).step_count == simulator.step_count
        assert engine.lane(0).counts_tuple == simulator.configuration.counts
        assert tuple(engine.lane(0).positions) == tuple(
            simulator.robot(j).position for j in range(k)
        )


class TestMonitors:
    def test_searching_monitor_matches_per_run(self):
        from repro.analysis.metrics import clearing_metrics
        from repro.tasks.searching import SearchingMonitor

        n, k = 13, 5
        steps = 8 * n * k
        configuration = sample_configurations(n, k, 1)[0]

        per_run_monitor = SearchingMonitor()
        simulator = Simulator(
            RingClearingAlgorithm(), configuration, monitors=[per_run_monitor]
        )
        simulator.run(steps)

        batch_monitors = []

        def monitors_factory(index):
            monitor = SearchingMonitor()
            batch_monitors.append(monitor)
            return [monitor]

        engine = BatchEngine(
            RingClearingAlgorithm(),
            [configuration],
            monitors_factory=monitors_factory,
        )
        engine.run(steps)

        reference = clearing_metrics(per_run_monitor, trace=simulator.trace)
        batched = clearing_metrics(batch_monitors[0], trace=engine.lane_trace(0))
        assert batched == reference


class TestRecordingFlag:
    def test_lane_trace_requires_recording(self):
        configuration = sample_configurations(12, 5, 1)[0]
        engine = BatchEngine(AlignAlgorithm(), [configuration], record_events=False)
        engine.run(10)
        assert engine.lane(0).total_moves >= 0
        with pytest.raises(RuntimeError, match="record_events=False"):
            engine.lane_trace(0)


class TestPackedStates:
    def test_packed_states_match_codec(self):
        from repro.core.cyclic import packed_codec

        configurations = sample_configurations(12, 5, 3)
        engine = BatchEngine(AlignAlgorithm(), configurations)
        engine.run(25)
        codec = packed_codec(12, max(max(c) for c in (
            engine.lane(i).counts_tuple for i in range(3)
        )))
        packed = engine.packed_states()
        assert packed == codec.pack_many(
            [engine.lane(i).counts_tuple for i in range(3)]
        )
