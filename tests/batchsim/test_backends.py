"""Unit tests for the batchsim occupancy-matrix backends."""

import pytest

from repro.batchsim.backends import (
    BACKEND_ENV_VAR,
    StdlibBackend,
    available_backends,
    make_backend,
    resolve_backend,
)
from repro.core.cyclic import packed_codec

ROWS = [(1, 0, 2, 0), (0, 1, 1, 1), (3, 0, 0, 0)]


def backend_names():
    return list(available_backends())


@pytest.fixture(params=backend_names())
def backend(request):
    return make_backend(request.param, ROWS)


class TestRowProtocol:
    def test_num_lanes(self, backend):
        assert backend.num_lanes == 3

    def test_counts_roundtrip(self, backend):
        for i, row in enumerate(ROWS):
            assert backend.counts(i) == row
            assert all(type(c) is int for c in backend.counts(i))

    def test_row_mutation_visible_in_counts(self, backend):
        row = backend.row(0)
        row[0] -= 1
        row[1] += 1
        assert backend.counts(0) == (0, 1, 2, 0)

    def test_tobytes_distinguishes_rows(self, backend):
        keys = {backend.row(i).tobytes() for i in range(3)}
        assert len(keys) == 3

    def test_tobytes_tracks_mutation(self, backend):
        before = backend.row(0).tobytes()
        backend.row(0)[0] += 1
        assert backend.row(0).tobytes() != before

    def test_pack_all_matches_codec(self, backend):
        codec = packed_codec(4, 3)
        assert backend.pack_all(codec) == codec.pack_many(ROWS)


class TestBackendEquivalence:
    @pytest.mark.skipif(
        "numpy" not in backend_names(), reason="numpy not installed"
    )
    def test_bytes_identical_across_backends(self):
        # Lane keys must agree between backends: both store int32 rows.
        a = make_backend("stdlib", ROWS)
        b = make_backend("numpy", ROWS)
        for i in range(3):
            assert a.row(i).tobytes() == b.row(i).tobytes()

    @pytest.mark.skipif(
        "numpy" not in backend_names(), reason="numpy not installed"
    )
    def test_pack_all_object_dtype_survives_int64_overflow(self):
        # n=24, k=8 digit layout needs 96 bits per packed state.
        n, k = 24, 8
        row = tuple([k] + [0] * (n - 1))
        codec = packed_codec(n, k)
        packed = make_backend("numpy", [row]).pack_all(codec)
        assert packed == codec.pack_many([row])
        assert packed[0] > 2**63


class TestResolution:
    def test_explicit_names(self):
        assert resolve_backend("stdlib") == "stdlib"
        with pytest.raises(ValueError, match="unknown batchsim backend"):
            resolve_backend("cuda")

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "numpy" if "numpy" in backend_names() else "stdlib"
        assert resolve_backend(None) == expected
        assert resolve_backend("auto") == expected

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "stdlib")
        assert resolve_backend(None) == "stdlib"
        assert isinstance(make_backend(None, ROWS), StdlibBackend)
        # explicit argument beats the environment
        if "numpy" in backend_names():
            assert resolve_backend("numpy") == "numpy"

    def test_numpy_requested_but_missing(self, monkeypatch):
        if "numpy" in backend_names():
            pytest.skip("numpy installed; covered by CI stdlib-only leg")
        with pytest.raises(ValueError, match="numpy is not installed"):
            resolve_backend("numpy")
