"""Unit tests for the shared global-plan table and the purity gate."""

import pytest

from repro.algorithms import (
    AlignAlgorithm,
    GatheringAlgorithm,
    IdleAlgorithm,
    RingClearingAlgorithm,
    SweepAlgorithm,
)
from repro.core.configuration import Configuration
from repro.core.cyclic import reflect, rotate
from repro.core.errors import AlgorithmPreconditionError
from repro.model import GlobalRuleAlgorithm, is_pure_global_rule
from repro.simulator.batchplan import INVALID_TARGET, GlobalPlanTable


class CountingAlign(AlignAlgorithm):
    """Align with a planner-call counter (still a pure global rule)."""

    def __init__(self):
        super().__init__()
        self.plan_calls = 0

    def plan(self, configuration):
        self.plan_calls += 1
        return super().plan(configuration)


class RiggedPlanner(GlobalRuleAlgorithm):
    """Adjacent-valid but rotation-variant: breaks the equivariance contract."""

    name = "rigged"

    def plan(self, configuration):
        # "The robot at the lowest-index occupied node moves clockwise" is
        # phrased in absolute coordinates, not views, so relabelling the
        # ring does not relabel the output the same way.
        mover = min(configuration.support)
        return {mover: (mover + 1) % configuration.n}


class NonAdjacentPlanner(GlobalRuleAlgorithm):
    """Planner that targets a non-adjacent node."""

    name = "teleporter"

    def plan(self, configuration):
        mover = min(configuration.support)
        return {mover: (mover + 3) % configuration.n}


class TestPurityGate:
    def test_classification(self):
        assert is_pure_global_rule(AlignAlgorithm())
        assert is_pure_global_rule(RingClearingAlgorithm())
        assert is_pure_global_rule(CountingAlign())
        # Not GlobalRuleAlgorithm subclasses at all:
        assert not is_pure_global_rule(SweepAlgorithm())
        assert not is_pure_global_rule(IdleAlgorithm())
        # Overrides plan_for_snapshot (multiplicity-dependent):
        assert not is_pure_global_rule(GatheringAlgorithm())

    def test_table_rejects_impure_algorithms(self):
        with pytest.raises(TypeError, match="not a pure global-rule algorithm"):
            GlobalPlanTable(SweepAlgorithm(), 8)
        with pytest.raises(TypeError, match="not a pure global-rule algorithm"):
            GlobalPlanTable(GatheringAlgorithm(), 8)


class TestCanonicalSharing:
    COUNTS = Configuration.from_occupied(9, [0, 1, 3, 6]).counts

    def test_canonical_counts_is_dihedral_invariant(self):
        table = GlobalPlanTable(AlignAlgorithm(), 9)
        base = table.canonical_counts(self.COUNTS)
        for r in range(9):
            assert table.canonical_counts(rotate(self.COUNTS, r)) == base
            assert table.canonical_counts(rotate(reflect(self.COUNTS), r)) == base

    def test_one_planner_call_per_orbit(self):
        algorithm = CountingAlign()
        table = GlobalPlanTable(algorithm, 9, self_check=0)
        for r in range(9):
            table.plan_for_counts(rotate(self.COUNTS, r))
            table.plan_for_counts(rotate(reflect(self.COUNTS), r))
        assert algorithm.plan_calls == 1
        assert len(table) == 18

    @pytest.mark.parametrize("seed_counts", [COUNTS, reflect(COUNTS)])
    def test_frame_mapped_plans_match_direct_plans(self, seed_counts):
        algorithm = AlignAlgorithm()
        table = GlobalPlanTable(algorithm, 9, self_check=0)
        for r in range(9):
            counts = rotate(seed_counts, r)
            derived = table.plan_for_counts(counts)
            direct = algorithm.planned_moves(
                Configuration.from_trusted_counts(counts)
            )
            assert derived == direct

    def test_self_check_accepts_equivariant_planner(self):
        table = GlobalPlanTable(AlignAlgorithm(), 9)
        for r in range(9):
            table.plan_for_counts(rotate(self.COUNTS, r))


class TestContractViolations:
    def test_equivariance_violation_is_caught(self):
        table = GlobalPlanTable(RiggedPlanner(), 9)
        counts = Configuration.from_occupied(9, [2, 3, 5]).counts
        with pytest.raises(AlgorithmPreconditionError, match="equivariance"):
            for r in range(9):
                table.plan_for_counts(rotate(counts, r))

    def test_non_adjacent_target_becomes_sentinel(self):
        table = GlobalPlanTable(NonAdjacentPlanner(), 9)
        counts = Configuration.from_occupied(9, [1, 4, 6]).counts
        plan = table.plan_for_counts(counts)
        mover = min(Configuration.from_trusted_counts(counts).support)
        assert plan[mover] is INVALID_TARGET
