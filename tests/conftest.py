"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolate_result_cache(monkeypatch):
    """Keep tests away from any real result cache of the developer.

    ``REPRO_RUN_CACHE`` makes every CLI invocation read/write a
    persistent content-addressed cache; inherited from the environment
    it would both pollute the developer's cache with test entries and
    serve stale results to tests.  Tests that exercise the variable set
    it explicitly via ``monkeypatch.setenv``.
    """
    monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
