"""Unit and property tests for :mod:`repro.core.cyclic`."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cyclic


small_sequences = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12)


class TestRotate:
    def test_basic(self):
        assert cyclic.rotate((1, 2, 3), 1) == (2, 3, 1)

    def test_zero(self):
        assert cyclic.rotate((1, 2, 3), 0) == (1, 2, 3)

    def test_modulo(self):
        assert cyclic.rotate((1, 2, 3), 4) == (2, 3, 1)

    def test_empty(self):
        assert cyclic.rotate((), 3) == ()

    @given(small_sequences, st.integers(min_value=-20, max_value=20))
    def test_rotation_preserves_multiset(self, seq, off):
        assert sorted(cyclic.rotate(seq, off)) == sorted(seq)


class TestReflect:
    def test_keeps_first_element(self):
        assert cyclic.reflect((7, 1, 2, 3)) == (7, 3, 2, 1)

    def test_single(self):
        assert cyclic.reflect((4,)) == (4,)

    def test_empty(self):
        assert cyclic.reflect(()) == ()

    @given(small_sequences)
    def test_involution(self, seq):
        assert cyclic.reflect(cyclic.reflect(seq)) == tuple(seq)


class TestCanonicalRotation:
    def test_known(self):
        assert cyclic.canonical_rotation((2, 1, 3)) == (1, 3, 2)

    @given(small_sequences)
    def test_matches_bruteforce(self, seq):
        brute = min(cyclic.rotations(seq))
        assert cyclic.canonical_rotation(seq) == brute

    @given(small_sequences, st.integers(min_value=0, max_value=20))
    def test_rotation_invariant(self, seq, off):
        assert cyclic.canonical_rotation(seq) == cyclic.canonical_rotation(
            cyclic.rotate(seq, off)
        )


class TestCanonicalDihedral:
    @given(small_sequences)
    def test_matches_bruteforce(self, seq):
        brute = min(cyclic.all_dihedral_images(seq))
        assert cyclic.canonical_dihedral(seq) == brute

    @given(small_sequences, st.integers(min_value=0, max_value=20))
    def test_invariant_under_rotation_and_reversal(self, seq, off):
        canon = cyclic.canonical_dihedral(seq)
        assert cyclic.canonical_dihedral(cyclic.rotate(seq, off)) == canon
        assert cyclic.canonical_dihedral(tuple(reversed(tuple(seq)))) == canon


class TestPeriodicity:
    def test_periodic(self):
        assert cyclic.smallest_period((1, 2, 1, 2)) == 2
        assert cyclic.is_rotationally_symmetric((1, 2, 1, 2))

    def test_aperiodic(self):
        assert cyclic.smallest_period((1, 2, 3)) == 3
        assert not cyclic.is_rotationally_symmetric((1, 2, 3))

    def test_constant_sequence(self):
        assert cyclic.smallest_period((5, 5, 5, 5)) == 1

    def test_empty(self):
        assert cyclic.smallest_period(()) == 0
        assert not cyclic.is_rotationally_symmetric(())

    @given(small_sequences)
    def test_period_divides_length(self, seq):
        p = cyclic.smallest_period(seq)
        assert len(seq) % p == 0

    @given(small_sequences, st.integers(min_value=1, max_value=4))
    def test_repetition_is_periodic(self, seq, reps):
        repeated = tuple(seq) * (reps + 1)
        assert cyclic.is_rotationally_symmetric(repeated)


class TestReflectiveSymmetry:
    def test_palindrome_like(self):
        # (0, 1, 2, 1) is symmetric as a cyclic sequence (axis through 0 and 2).
        assert cyclic.is_reflectively_symmetric((0, 1, 2, 1))

    def test_asymmetric(self):
        assert not cyclic.is_reflectively_symmetric((0, 1, 2, 3))

    def test_matches_are_valid(self):
        seq = (0, 1, 2, 1)
        rev = tuple(reversed(seq))
        for i in cyclic.reflection_matches(seq):
            assert cyclic.rotate(seq, i) == rev

    @given(small_sequences)
    def test_symmetry_invariant_under_rotation(self, seq):
        value = cyclic.is_reflectively_symmetric(seq)
        for off in range(len(seq)):
            assert cyclic.is_reflectively_symmetric(cyclic.rotate(seq, off)) == value

    @given(small_sequences)
    def test_reflection_is_symmetric_iff_original(self, seq):
        assert cyclic.is_reflectively_symmetric(seq) == cyclic.is_reflectively_symmetric(
            tuple(reversed(tuple(seq)))
        )


class TestFixedSumGenerators:
    @staticmethod
    def brute_necklaces(length, total):
        from itertools import product

        return sorted(
            {
                cyclic.canonical_rotation(seq)
                for seq in product(range(total + 1), repeat=length)
                if sum(seq) == total
            }
        )

    @staticmethod
    def brute_bracelets(length, total):
        from itertools import product

        return sorted(
            {
                cyclic.canonical_dihedral(seq)
                for seq in product(range(total + 1), repeat=length)
                if sum(seq) == total
            }
        )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_necklaces_match_brute_force(self, length, total):
        assert list(cyclic.iter_fixed_sum_necklaces(length, total)) == self.brute_necklaces(
            length, total
        )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_bracelets_match_brute_force(self, length, total):
        assert list(cyclic.iter_fixed_sum_bracelets(length, total)) == self.brute_bracelets(
            length, total
        )

    def test_bracelet_representatives_are_dihedral_canonical(self):
        for bracelet in cyclic.iter_fixed_sum_bracelets(6, 6):
            assert bracelet == cyclic.canonical_dihedral(bracelet)

    def test_empty_length(self):
        assert list(cyclic.iter_fixed_sum_necklaces(0, 0)) == [()]
        assert list(cyclic.iter_fixed_sum_necklaces(0, 3)) == []
        assert list(cyclic.iter_fixed_sum_necklaces(-1, 0)) == []
