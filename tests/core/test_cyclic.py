"""Unit and property tests for :mod:`repro.core.cyclic`."""

from math import comb, gcd

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cyclic


small_sequences = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12)


class TestRotate:
    def test_basic(self):
        assert cyclic.rotate((1, 2, 3), 1) == (2, 3, 1)

    def test_zero(self):
        assert cyclic.rotate((1, 2, 3), 0) == (1, 2, 3)

    def test_modulo(self):
        assert cyclic.rotate((1, 2, 3), 4) == (2, 3, 1)

    def test_empty(self):
        assert cyclic.rotate((), 3) == ()

    @given(small_sequences, st.integers(min_value=-20, max_value=20))
    def test_rotation_preserves_multiset(self, seq, off):
        assert sorted(cyclic.rotate(seq, off)) == sorted(seq)


class TestReflect:
    def test_keeps_first_element(self):
        assert cyclic.reflect((7, 1, 2, 3)) == (7, 3, 2, 1)

    def test_single(self):
        assert cyclic.reflect((4,)) == (4,)

    def test_empty(self):
        assert cyclic.reflect(()) == ()

    @given(small_sequences)
    def test_involution(self, seq):
        assert cyclic.reflect(cyclic.reflect(seq)) == tuple(seq)


class TestCanonicalRotation:
    def test_known(self):
        assert cyclic.canonical_rotation((2, 1, 3)) == (1, 3, 2)

    @given(small_sequences)
    def test_matches_bruteforce(self, seq):
        brute = min(cyclic.rotations(seq))
        assert cyclic.canonical_rotation(seq) == brute

    @given(small_sequences, st.integers(min_value=0, max_value=20))
    def test_rotation_invariant(self, seq, off):
        assert cyclic.canonical_rotation(seq) == cyclic.canonical_rotation(
            cyclic.rotate(seq, off)
        )


class TestCanonicalDihedral:
    @given(small_sequences)
    def test_matches_bruteforce(self, seq):
        brute = min(cyclic.all_dihedral_images(seq))
        assert cyclic.canonical_dihedral(seq) == brute

    @given(small_sequences, st.integers(min_value=0, max_value=20))
    def test_invariant_under_rotation_and_reversal(self, seq, off):
        canon = cyclic.canonical_dihedral(seq)
        assert cyclic.canonical_dihedral(cyclic.rotate(seq, off)) == canon
        assert cyclic.canonical_dihedral(tuple(reversed(tuple(seq)))) == canon


class TestPeriodicity:
    def test_periodic(self):
        assert cyclic.smallest_period((1, 2, 1, 2)) == 2
        assert cyclic.is_rotationally_symmetric((1, 2, 1, 2))

    def test_aperiodic(self):
        assert cyclic.smallest_period((1, 2, 3)) == 3
        assert not cyclic.is_rotationally_symmetric((1, 2, 3))

    def test_constant_sequence(self):
        assert cyclic.smallest_period((5, 5, 5, 5)) == 1

    def test_empty(self):
        assert cyclic.smallest_period(()) == 0
        assert not cyclic.is_rotationally_symmetric(())

    @given(small_sequences)
    def test_period_divides_length(self, seq):
        p = cyclic.smallest_period(seq)
        assert len(seq) % p == 0

    @given(small_sequences, st.integers(min_value=1, max_value=4))
    def test_repetition_is_periodic(self, seq, reps):
        repeated = tuple(seq) * (reps + 1)
        assert cyclic.is_rotationally_symmetric(repeated)


class TestReflectiveSymmetry:
    def test_palindrome_like(self):
        # (0, 1, 2, 1) is symmetric as a cyclic sequence (axis through 0 and 2).
        assert cyclic.is_reflectively_symmetric((0, 1, 2, 1))

    def test_asymmetric(self):
        assert not cyclic.is_reflectively_symmetric((0, 1, 2, 3))

    def test_matches_are_valid(self):
        seq = (0, 1, 2, 1)
        rev = tuple(reversed(seq))
        for i in cyclic.reflection_matches(seq):
            assert cyclic.rotate(seq, i) == rev

    @given(small_sequences)
    def test_symmetry_invariant_under_rotation(self, seq):
        value = cyclic.is_reflectively_symmetric(seq)
        for off in range(len(seq)):
            assert cyclic.is_reflectively_symmetric(cyclic.rotate(seq, off)) == value

    @given(small_sequences)
    def test_reflection_is_symmetric_iff_original(self, seq):
        assert cyclic.is_reflectively_symmetric(seq) == cyclic.is_reflectively_symmetric(
            tuple(reversed(tuple(seq)))
        )


class TestFixedSumGenerators:
    @staticmethod
    def brute_necklaces(length, total):
        from itertools import product

        return sorted(
            {
                cyclic.canonical_rotation(seq)
                for seq in product(range(total + 1), repeat=length)
                if sum(seq) == total
            }
        )

    @staticmethod
    def brute_bracelets(length, total):
        from itertools import product

        return sorted(
            {
                cyclic.canonical_dihedral(seq)
                for seq in product(range(total + 1), repeat=length)
                if sum(seq) == total
            }
        )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_necklaces_match_brute_force(self, length, total):
        assert list(cyclic.iter_fixed_sum_necklaces(length, total)) == self.brute_necklaces(
            length, total
        )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_bracelets_match_brute_force(self, length, total):
        assert list(cyclic.iter_fixed_sum_bracelets(length, total)) == self.brute_bracelets(
            length, total
        )

    def test_bracelet_representatives_are_dihedral_canonical(self):
        for bracelet in cyclic.iter_fixed_sum_bracelets(6, 6):
            assert bracelet == cyclic.canonical_dihedral(bracelet)

    def test_empty_length(self):
        assert list(cyclic.iter_fixed_sum_necklaces(0, 0)) == [()]
        assert list(cyclic.iter_fixed_sum_necklaces(0, 3)) == []
        assert list(cyclic.iter_fixed_sum_necklaces(-1, 0)) == []


def _totient(m):
    count = 0
    for value in range(1, m + 1):
        if gcd(value, m) == 1:
            count += 1
    return count


def binary_necklace_count(n, k):
    """Burnside closed form: binary necklaces of ``n`` beads, ``k`` black.

    Averaging fixed points over the rotation group :math:`C_n`:
    :math:`\\frac{1}{n}\\sum_{d \\mid \\gcd(n,k)} \\varphi(d)\\binom{n/d}{k/d}`.
    """
    g = gcd(n, k)
    total = sum(_totient(d) * comb(n // d, k // d) for d in range(1, g + 1) if g % d == 0)
    assert total % n == 0
    return total // n


def binary_bracelet_count(n, k):
    """Burnside closed form over the dihedral group :math:`D_n`.

    Rotation term as in :func:`binary_necklace_count`; the reflection
    term counts strings fixed by each axis (vertex axes have one or two
    fixed beads, edge axes none).
    """
    g = gcd(n, k)
    rotation_fixed = sum(
        _totient(d) * comb(n // d, k // d) for d in range(1, g + 1) if g % d == 0
    )
    if n % 2 == 1:
        reflection_fixed = n * comb((n - 1) // 2, k // 2)
    else:
        edge_axis = comb(n // 2, k // 2) if k % 2 == 0 else 0
        if k % 2 == 0:
            vertex_axis = comb((n - 2) // 2, k // 2) + (
                comb((n - 2) // 2, (k - 2) // 2) if k >= 2 else 0
            )
        else:
            vertex_axis = 2 * comb((n - 2) // 2, (k - 1) // 2)
        reflection_fixed = (n // 2) * (edge_axis + vertex_axis)
    total = rotation_fixed + reflection_fixed
    assert total % (2 * n) == 0
    return total // (2 * n)


class TestGeneratorCountsMatchClosedForms:
    """The fixed-sum generators agree with the Burnside closed forms.

    A configuration of ``k`` robots on ``n`` nodes is a binary necklace
    (bracelet) of ``n`` beads with ``k`` black ones; its gap cycle is a
    fixed-sum sequence of length ``k`` summing to ``n - k``.  The
    generators therefore must produce exactly the closed-form counts.
    """

    def test_all_cells_up_to_n14(self):
        for n in range(1, 15):
            for k in range(1, n + 1):
                necklaces = sum(1 for _ in cyclic.iter_fixed_sum_necklaces(k, n - k))
                bracelets = sum(1 for _ in cyclic.iter_fixed_sum_bracelets(k, n - k))
                assert necklaces == binary_necklace_count(n, k), (n, k)
                assert bracelets == binary_bracelet_count(n, k), (n, k)

    @given(st.integers(min_value=1, max_value=16), st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_cells_match(self, n, data):
        k = data.draw(st.integers(min_value=1, max_value=n))
        assert sum(1 for _ in cyclic.iter_fixed_sum_necklaces(k, n - k)) == binary_necklace_count(n, k)
        assert sum(1 for _ in cyclic.iter_fixed_sum_bracelets(k, n - k)) == binary_bracelet_count(n, k)

    @given(small_sequences)
    def test_booth_canonical_vs_bruteforce_dihedral(self, seq):
        """Booth-based canonical forms equal the brute-force minima."""
        assert cyclic.canonical_rotation(seq) == min(cyclic.rotations(seq))
        assert cyclic.canonical_dihedral(seq) == min(cyclic.all_dihedral_images(seq))
