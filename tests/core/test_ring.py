"""Unit tests for :mod:`repro.core.ring`."""

import pytest

from repro.core.errors import InvalidRingError
from repro.core.ring import CCW, CW, Ring, edge


class TestConstruction:
    def test_minimum_size(self):
        assert Ring(3).n == 3

    @pytest.mark.parametrize("n", [0, 1, 2, -5])
    def test_too_small_rejected(self, n):
        with pytest.raises(InvalidRingError):
            Ring(n)

    def test_nodes_range(self):
        assert list(Ring(5).nodes) == [0, 1, 2, 3, 4]


class TestEdges:
    def test_edge_count(self):
        assert len(Ring(7).edges()) == 7

    def test_edges_normalised(self):
        edges = Ring(4).edges()
        assert (3, 0) in edges
        assert (0, 1) in edges

    def test_edge_between_wraparound(self):
        assert Ring(6).edge_between(0, 5) == (5, 0)
        assert Ring(6).edge_between(5, 0) == (5, 0)

    def test_edge_function_rejects_non_adjacent(self):
        with pytest.raises(ValueError):
            edge(0, 2, 6)

    def test_every_edge_is_adjacent_pair(self):
        ring = Ring(9)
        for u, v in ring.edges():
            assert ring.are_adjacent(u, v)


class TestNeighbors:
    def test_successor_cw(self):
        assert Ring(5).successor(4, CW) == 0

    def test_successor_ccw(self):
        assert Ring(5).successor(0, CCW) == 4

    def test_successor_invalid_direction(self):
        with pytest.raises(ValueError):
            Ring(5).successor(0, 2)

    def test_neighbors(self):
        assert Ring(5).neighbors(0) == (1, 4)

    def test_adjacency_symmetric(self):
        ring = Ring(8)
        assert ring.are_adjacent(7, 0)
        assert ring.are_adjacent(0, 7)
        assert not ring.are_adjacent(0, 2)
        assert not ring.are_adjacent(3, 3)


class TestDistances:
    def test_directed_distance(self):
        ring = Ring(10)
        assert ring.directed_distance(2, 5, CW) == 3
        assert ring.directed_distance(2, 5, CCW) == 7

    def test_directed_distance_invalid_direction(self):
        with pytest.raises(ValueError):
            Ring(10).directed_distance(0, 1, 0)

    def test_distance_shortest(self):
        ring = Ring(10)
        assert ring.distance(0, 7) == 3
        assert ring.distance(7, 0) == 3
        assert ring.distance(3, 3) == 0

    @pytest.mark.parametrize(
        "n,u,v,expected",
        [
            (8, 0, 4, True),
            (8, 0, 3, False),
            (7, 0, 3, True),
            (7, 0, 4, True),
            (7, 0, 2, False),
            (7, 0, 0, False),
        ],
    )
    def test_diametral(self, n, u, v, expected):
        assert Ring(n).are_diametral(u, v) is expected


class TestWalks:
    def test_walk_includes_start(self):
        assert Ring(6).walk(4, 3, CW) == [4, 5, 0, 1]

    def test_walk_ccw(self):
        assert Ring(6).walk(1, 2, CCW) == [1, 0, 5]

    def test_walk_negative_steps(self):
        with pytest.raises(ValueError):
            Ring(6).walk(0, -1)

    def test_arc(self):
        assert Ring(6).arc(4, 1, CW) == [4, 5, 0, 1]

    def test_strictly_between(self):
        assert Ring(6).strictly_between(4, 1, CW) == [5, 0]
        assert Ring(6).strictly_between(4, 5, CW) == []

    def test_iter_from_covers_all(self):
        assert sorted(Ring(5).iter_from(3, CCW)) == [0, 1, 2, 3, 4]

    def test_segment_edges(self):
        ring = Ring(5)
        assert ring.segment_edges([3, 4, 0]) == [(3, 4), (4, 0)]
