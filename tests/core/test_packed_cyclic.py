"""Packed-sequence codec, permutation tables and bitmask search dynamics.

These are the integer primitives under the frontier engine; each is
cross-checked against the tuple/set implementation it replaces.
"""

import random

import pytest

from repro.core.configuration import Configuration
from repro.core.cyclic import (
    PackedSequenceCodec,
    canonical_dihedral,
    packed_codec,
    rotate,
)
from repro.core.ring import Ring
from repro.core.symmetry import apply_permutation, dihedral_permutation_tables
from repro.tasks.searching import RingSearchDynamics, advance_clear_edges


def _random_sequences(trials, seed=0):
    rng = random.Random(seed)
    for _ in range(trials):
        n = rng.randint(1, 12)
        max_value = rng.randint(1, 9)
        yield n, max_value, tuple(rng.randint(0, max_value) for _ in range(n))


class TestPackedSequenceCodec:
    def test_pack_unpack_roundtrip(self):
        for n, max_value, seq in _random_sequences(300):
            codec = PackedSequenceCodec(n, max_value)
            assert codec.unpack(codec.pack(seq)) == seq

    def test_numeric_order_is_lexicographic(self):
        rng = random.Random(1)
        codec = PackedSequenceCodec(6, 7)
        for _ in range(300):
            a = tuple(rng.randint(0, 7) for _ in range(6))
            b = tuple(rng.randint(0, 7) for _ in range(6))
            assert (codec.pack(a) < codec.pack(b)) == (a < b)

    def test_rotate_matches_tuple_rotation(self):
        for n, max_value, seq in _random_sequences(200, seed=2):
            codec = PackedSequenceCodec(n, max_value)
            packed = codec.pack(seq)
            for r in range(n):
                assert codec.unpack(codec.rotate(packed, r)) == rotate(seq, r)

    def test_reversed_digits(self):
        for n, max_value, seq in _random_sequences(200, seed=3):
            codec = PackedSequenceCodec(n, max_value)
            assert codec.unpack(codec.reversed_digits(codec.pack(seq))) == tuple(
                reversed(seq)
            )

    def test_canonical_agrees_with_canonical_dihedral(self):
        for n, max_value, seq in _random_sequences(400, seed=4):
            codec = PackedSequenceCodec(n, max_value)
            packed = codec.pack(seq)
            assert codec.unpack(codec.canonical(packed)) == canonical_dihedral(seq)

    def test_canonical_transform_is_a_valid_witness(self):
        for n, max_value, seq in _random_sequences(400, seed=5):
            codec = PackedSequenceCodec(n, max_value)
            canon, flip, r = codec.canonical_with_transform(codec.pack(seq))
            rotations, reflections = dihedral_permutation_tables(n)
            sigma = rotations[r] if flip == 0 else reflections[(n - 1 - r) % n]
            assert apply_permutation(seq, sigma) == codec.unpack(canon)

    def test_shared_codec_cache(self):
        assert packed_codec(8, 3) is packed_codec(8, 3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PackedSequenceCodec(0, 1)
        with pytest.raises(ValueError):
            PackedSequenceCodec(3, -1)


class TestDihedralPermutationTables:
    def test_rotation_tables_match_rotate(self):
        for n in (1, 2, 3, 5, 8):
            rotations, reflections = dihedral_permutation_tables(n)
            seq = tuple(range(n))
            for r in range(n):
                assert apply_permutation(seq, rotations[r]) == rotate(seq, r)
            for c in range(n):
                assert apply_permutation(seq, reflections[c]) == tuple(
                    (c - i) % n for i in range(n)
                )

    def test_tables_are_cached(self):
        assert dihedral_permutation_tables(9) is dihedral_permutation_tables(9)


class TestRingSearchDynamics:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_advance_matches_set_implementation_exhaustively(self, n):
        ring = Ring(n)
        dynamics = RingSearchDynamics(n)
        edges = ring.edges()
        rng = random.Random(n)
        for support_bits in range(1, 1 << n):
            occupied = [v for v in range(n) if (support_bits >> v) & 1]
            configuration = Configuration.from_occupied(n, occupied)
            assert dynamics.mask_to_edges(
                dynamics.initial_clear(support_bits)
            ) == advance_clear_edges(ring, set(), set(), configuration)
            for _ in range(4):
                clear = {e for e in edges if rng.random() < 0.5}
                traversed = {e for e in edges if rng.random() < 0.25}
                expected = advance_clear_edges(
                    ring, set(clear), set(traversed), configuration
                )
                pre = dynamics.edges_to_mask(clear, n) | dynamics.edges_to_mask(
                    traversed, n
                )
                assert dynamics.mask_to_edges(
                    dynamics.advance(support_bits, pre)
                ) == expected

    def test_edge_mask_roundtrip(self):
        dynamics = RingSearchDynamics(6)
        edges = {(0, 1), (3, 4), (5, 0)}
        assert dynamics.mask_to_edges(dynamics.edges_to_mask(edges, 6)) == edges

    def test_rejects_tiny_ring(self):
        with pytest.raises(ValueError):
            RingSearchDynamics(2)
