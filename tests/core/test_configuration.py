"""Unit and property tests for :mod:`repro.core.configuration`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.configuration import Configuration
from repro.core.errors import (
    ExclusivityViolationError,
    InvalidConfigurationError,
    NotOccupiedError,
)
from repro.core.ring import CCW, CW
from repro.core.symmetry import (
    is_periodic_support,
    is_rigid_support,
    is_symmetric_support,
)


@st.composite
def exclusive_configurations(draw, min_n=3, max_n=14):
    """Random exclusive configurations with 1 <= k <= n robots."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    k = draw(st.integers(min_value=1, max_value=n))
    occupied = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k, unique=True)
    )
    return Configuration.from_occupied(n, occupied)


class TestConstruction:
    def test_from_occupied(self):
        cfg = Configuration.from_occupied(6, [0, 2, 3])
        assert cfg.n == 6
        assert cfg.k == 3
        assert cfg.support == (0, 2, 3)
        assert cfg.is_exclusive

    def test_from_occupied_rejects_duplicates(self):
        with pytest.raises(ExclusivityViolationError):
            Configuration.from_occupied(6, [0, 0, 3])

    def test_from_occupied_rejects_out_of_range(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration.from_occupied(6, [0, 6])

    def test_from_positions_multiplicities(self):
        cfg = Configuration.from_positions(5, [1, 1, 3])
        assert cfg.k == 3
        assert cfg.num_occupied == 2
        assert cfg.multiplicity(1) == 2
        assert cfg.has_multiplicity(1)
        assert not cfg.has_multiplicity(3)
        assert not cfg.is_exclusive

    def test_requires_at_least_one_robot(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration([0, 0, 0, 0])

    def test_from_trusted_counts_equals_validated_construction(self):
        for counts in ((1, 0, 2, 0, 1), (0, 1, 1, 0, 0, 1), (3, 0, 0)):
            trusted = Configuration.from_trusted_counts(counts)
            validated = Configuration(counts)
            assert trusted == validated
            assert trusted.support == validated.support
            assert trusted.k == validated.k
            assert trusted.gap_cycle() == validated.gap_cycle()
            assert trusted.is_exclusive == validated.is_exclusive
            assert hash(trusted) == hash(validated)

    def test_rejects_negative_counts(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration([1, -1, 0])

    def test_rejects_tiny_ring(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration([1, 1])

    def test_from_gaps_roundtrip(self):
        cfg = Configuration.from_gaps((0, 1, 3), anchor=2)
        assert cfg.n == 7
        assert cfg.support == (2, 3, 5)
        assert sorted(cfg.gaps()) == [0, 1, 3]

    def test_from_gaps_rejects_negative(self):
        with pytest.raises(InvalidConfigurationError):
            Configuration.from_gaps((1, -1, 2))

    @given(exclusive_configurations())
    def test_gap_roundtrip_property(self, cfg):
        rebuilt = Configuration.from_gaps(cfg.gaps(), anchor=cfg.support[0])
        assert rebuilt == cfg


class TestStructure:
    def test_gap_cycle_values(self):
        cfg = Configuration.from_occupied(10, [0, 1, 4, 8])
        gaps, nodes = cfg.gap_cycle()
        assert nodes == (0, 1, 4, 8)
        assert gaps == (0, 2, 3, 1)
        assert sum(gaps) + len(gaps) == 10

    def test_single_robot_gap(self):
        cfg = Configuration.from_occupied(7, [3])
        assert cfg.gaps() == (6,)

    def test_occupied_order_directions(self):
        cfg = Configuration.from_occupied(8, [1, 2, 5])
        assert cfg.occupied_order(1, CW) == (1, 2, 5)
        assert cfg.occupied_order(1, CCW) == (1, 5, 2)

    def test_occupied_order_requires_occupied_start(self):
        cfg = Configuration.from_occupied(8, [1, 2, 5])
        with pytest.raises(NotOccupiedError):
            cfg.occupied_order(0, CW)

    def test_blocks(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 5, 6, 9])
        blocks = cfg.blocks()
        block_sets = sorted(tuple(b) for b in blocks)
        assert block_sets == [(5, 6), (9, 0, 1, 2)]

    def test_blocks_full_ring(self):
        cfg = Configuration.from_occupied(5, [0, 1, 2, 3, 4])
        assert [tuple(b) for b in cfg.blocks()] == [(0, 1, 2, 3, 4)]

    def test_intervals(self):
        cfg = Configuration.from_occupied(8, [0, 1, 4])
        intervals = {(iv.before, iv.after): iv.length for iv in cfg.intervals()}
        assert intervals == {(0, 1): 0, (1, 4): 2, (4, 0): 3}

    def test_interval_nodes(self):
        cfg = Configuration.from_occupied(8, [0, 1, 4])
        for iv in cfg.intervals():
            if (iv.before, iv.after) == (1, 4):
                assert tuple(iv) == (2, 3)

    def test_empty_nodes(self):
        cfg = Configuration.from_occupied(6, [0, 3])
        assert cfg.empty_nodes() == (1, 2, 4, 5)

    @given(exclusive_configurations())
    def test_blocks_and_intervals_partition_ring(self, cfg):
        block_nodes = [node for block in cfg.blocks() for node in block]
        interval_nodes = [node for iv in cfg.intervals() for node in iv]
        assert sorted(block_nodes) == list(cfg.support)
        assert sorted(interval_nodes) == list(cfg.empty_nodes())


class TestViews:
    def test_directed_views_of_known_configuration(self):
        # C* with k=4, n=9: occupied 0,1,2 then empty, then 4, rest empty.
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        assert cfg.directed_view(0, CW) == (0, 0, 1, 4)
        assert cfg.directed_view(0, CCW) == (4, 1, 0, 0)
        assert cfg.min_view(0) == (0, 0, 1, 4)

    def test_view_requires_occupied_node(self):
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        with pytest.raises(NotOccupiedError):
            cfg.directed_view(3, CW)

    def test_supermin_view(self):
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        assert cfg.supermin_view() == (0, 0, 1, 4)

    def test_supermin_anchor_is_unique_for_rigid(self):
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        anchors = cfg.supermin_anchors()
        assert anchors == [(0, CW)]

    @given(exclusive_configurations())
    def test_supermin_is_min_over_node_views(self, cfg):
        target = cfg.supermin_view()
        best = min(min(cfg.views_of(node)) for node in cfg.support)
        assert target == best

    @given(exclusive_configurations())
    def test_views_sum_to_empty_nodes(self, cfg):
        for node in cfg.support:
            for view in cfg.views_of(node):
                assert sum(view) == cfg.n - cfg.num_occupied
                assert len(view) == cfg.num_occupied


class TestSymmetryDetection:
    def test_rigid_example(self):
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        assert cfg.is_rigid
        assert not cfg.is_symmetric
        assert not cfg.is_periodic

    def test_symmetric_example(self):
        cfg = Configuration.from_occupied(8, [0, 2, 5, 7])
        assert cfg.is_symmetric

    def test_periodic_example(self):
        cfg = Configuration.from_occupied(8, [0, 2, 4, 6])
        assert cfg.is_periodic
        assert cfg.is_symmetric
        assert not cfg.is_rigid

    def test_cs_configuration_is_rigid(self):
        # Cs has supermin view (0,1,1,2): k=4, n=8.
        cfg = Configuration.from_gaps((0, 1, 1, 2))
        assert cfg.supermin_view() == (0, 1, 1, 2)
        assert cfg.is_rigid

    @given(exclusive_configurations())
    def test_view_based_matches_bruteforce(self, cfg):
        assert cfg.is_periodic == is_periodic_support(cfg.support, cfg.n)
        assert cfg.is_symmetric == is_symmetric_support(cfg.support, cfg.n)
        assert cfg.is_rigid == is_rigid_support(cfg.support, cfg.n)

    @given(exclusive_configurations())
    def test_lemma_1_supermin_interval_counts(self, cfg):
        """Lemma 1 of the paper, machine-checked on random configurations."""
        count = cfg.supermin_interval_count()
        if count == 1:
            axes = cfg.symmetry_axes()
            assert cfg.is_rigid or (not cfg.is_periodic and len(axes) == 1)
        elif count == 2:
            assert (cfg.is_symmetric and not cfg.is_periodic) or cfg.is_periodic
        else:
            assert cfg.is_periodic

    @given(exclusive_configurations())
    def test_rigid_implies_unique_views(self, cfg):
        if cfg.is_rigid:
            min_views = [cfg.min_view(node) for node in cfg.support]
            assert len(set(min_views)) == len(min_views)

    @given(exclusive_configurations())
    def test_rigid_implies_unique_supermin_anchor(self, cfg):
        if cfg.is_rigid:
            assert len(cfg.supermin_anchors()) == 1


class TestCanonicalForms:
    @given(exclusive_configurations(), st.integers(min_value=0, max_value=20))
    def test_canonical_gaps_invariant_under_rotation(self, cfg, offset):
        assert cfg.rotated(offset).canonical_gaps() == cfg.canonical_gaps()

    @given(exclusive_configurations(), st.integers(min_value=0, max_value=20))
    def test_canonical_gaps_invariant_under_reflection(self, cfg, idx):
        assert cfg.reflected(idx % cfg.n).canonical_gaps() == cfg.canonical_gaps()

    @given(exclusive_configurations(), st.integers(min_value=0, max_value=20))
    def test_canonical_key_invariant(self, cfg, offset):
        assert cfg.rotated(offset).canonical_key() == cfg.canonical_key()
        assert cfg.reflected(offset % cfg.n).canonical_key() == cfg.canonical_key()


class TestSpecialForms:
    def test_c_star_detection(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 3, 5])
        assert cfg.is_c_star()
        assert cfg.is_c_star_type()

    def test_c_star_requires_large_gap(self):
        # k = n - 3 leaves only a gap of 2 which is allowed (>= 2).
        cfg = Configuration.from_occupied(8, [0, 1, 2, 3, 5])
        assert cfg.is_c_star()

    def test_not_c_star(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 4, 6])
        assert not cfg.is_c_star()

    def test_c_star_type_with_multiplicities(self):
        # Support {0,1,2,4} is C*-type even if node 0 hosts several robots.
        cfg = Configuration.from_positions(9, [0, 0, 0, 1, 2, 4])
        assert cfg.is_c_star_type()
        assert not cfg.is_c_star()  # not exclusive

    def test_c_star_type_anchor(self):
        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        node, direction = cfg.c_star_type_anchor()
        assert node == 0
        assert direction == CW

    def test_c_star_type_anchor_requires_type(self):
        cfg = Configuration.from_occupied(9, [0, 2, 4, 6])
        with pytest.raises(InvalidConfigurationError):
            cfg.c_star_type_anchor()


class TestMutation:
    def test_move_robot(self):
        cfg = Configuration.from_occupied(6, [0, 3])
        moved = cfg.move_robot(3, 4)
        assert moved.support == (0, 4)
        assert cfg.support == (0, 3)  # immutability

    def test_move_requires_adjacency(self):
        cfg = Configuration.from_occupied(6, [0, 3])
        with pytest.raises(InvalidConfigurationError):
            cfg.move_robot(0, 2)

    def test_move_non_adjacent_allowed_when_disabled(self):
        cfg = Configuration.from_occupied(6, [0, 3])
        moved = cfg.move_robot(0, 2, require_adjacent=False)
        assert moved.support == (2, 3)

    def test_move_from_empty_node(self):
        cfg = Configuration.from_occupied(6, [0, 3])
        with pytest.raises(NotOccupiedError):
            cfg.move_robot(1, 2)

    def test_move_creates_multiplicity(self):
        cfg = Configuration.from_occupied(6, [0, 1])
        merged = cfg.move_robot(0, 1)
        assert merged.multiplicity(1) == 2
        assert merged.num_occupied == 1

    def test_rotated_and_reflected(self):
        cfg = Configuration.from_occupied(6, [0, 1, 3])
        assert cfg.rotated(2).support == (2, 3, 5)
        assert cfg.reflected(0).support == (0, 3, 5)


class TestDunder:
    def test_equality_and_hash(self):
        a = Configuration.from_occupied(6, [0, 3])
        b = Configuration.from_occupied(6, [3, 0])
        c = Configuration.from_occupied(6, [0, 4])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a configuration"

    def test_repr_exclusive(self):
        assert "occupied" in repr(Configuration.from_occupied(6, [0, 3]))

    def test_repr_multiplicity(self):
        assert "robots" in repr(Configuration.from_positions(6, [0, 0, 3]))

    def test_ascii_art(self):
        cfg = Configuration.from_positions(6, [0, 0, 3])
        art = cfg.ascii_art()
        assert art == "2..R.."
