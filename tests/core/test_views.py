"""Unit and property tests for :mod:`repro.core.views`."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import views
from repro.core.cyclic import rotations
from repro.core.ring import CCW, CW


# Gap cycles of up to 8 occupied nodes with gaps up to 5.
gap_cycles = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8).map(tuple)


class TestRingSize:
    def test_ring_size(self):
        assert views.ring_size_of((0, 1, 3)) == 7

    def test_single_robot(self):
        assert views.ring_size_of((4,)) == 5


class TestDirectedViews:
    def test_cw_view_is_rotation(self):
        gaps = (0, 1, 3)
        assert views.cw_view(gaps, 0) == (0, 1, 3)
        assert views.cw_view(gaps, 1) == (1, 3, 0)
        assert views.cw_view(gaps, 2) == (3, 0, 1)

    def test_ccw_view(self):
        gaps = (0, 1, 3)
        # Reading counter-clockwise from node 0, the first gap met is the
        # one preceding node 0 clockwise, i.e. gaps[-1].
        assert views.ccw_view(gaps, 0) == (3, 1, 0)
        assert views.ccw_view(gaps, 1) == (0, 3, 1)
        assert views.ccw_view(gaps, 2) == (1, 0, 3)

    def test_all_views_count(self):
        gaps = (0, 1, 3, 2)
        all_views = views.directed_views(gaps)
        assert len(all_views) == 2 * len(gaps)
        assert all_views[(0, CW)] == (0, 1, 3, 2)
        assert all_views[(0, CCW)] == (2, 3, 1, 0)

    @given(gap_cycles)
    def test_views_preserve_gap_multiset(self, gaps):
        for view in views.directed_views(gaps).values():
            assert sorted(view) == sorted(gaps)

    @given(gap_cycles, st.integers(min_value=0, max_value=7))
    def test_cw_and_ccw_are_mirror(self, gaps, idx):
        idx %= len(gaps)
        cw = views.cw_view(gaps, idx)
        ccw = views.ccw_view(gaps, idx)
        # Reading one way and reversing gives the reading in the other
        # direction from the same node.
        assert tuple(reversed(cw)) == ccw
        assert sorted(cw) == sorted(ccw)


class TestSupermin:
    def test_supermin_of_c_star(self):
        # C* with k=5, n=10: view (0,0,0,1,4).
        gaps = (1, 4, 0, 0, 0)
        assert views.supermin_view(gaps) == (0, 0, 0, 1, 4)

    def test_supermin_smaller_than_all_views(self):
        gaps = (2, 0, 1, 3)
        target = views.supermin_view(gaps)
        for view in views.directed_views(gaps).values():
            assert target <= view

    @given(gap_cycles)
    def test_supermin_is_minimum_of_views(self, gaps):
        all_views = views.directed_views(gaps).values()
        assert views.supermin_view(gaps) == min(all_views)

    @given(gap_cycles)
    def test_supermin_invariant_under_rotation(self, gaps):
        target = views.supermin_view(gaps)
        for rot in rotations(gaps):
            assert views.supermin_view(rot) == target

    @given(gap_cycles)
    def test_supermin_invariant_under_reversal(self, gaps):
        assert views.supermin_view(tuple(reversed(gaps))) == views.supermin_view(gaps)

    def test_anchors_unique_for_rigid(self):
        gaps = (0, 1, 3)  # rigid: C* with k=3, n=7
        anchors = views.supermin_anchors(gaps)
        assert len(anchors) == 1
        idx, direction = anchors[0]
        view = views.cw_view(gaps, idx) if direction == CW else views.ccw_view(gaps, idx)
        assert view == views.supermin_view(gaps)

    def test_anchors_multiple_for_symmetric(self):
        gaps = (1, 2, 1, 2)  # periodic configuration
        assert len(views.supermin_anchors(gaps)) >= 2

    @given(gap_cycles)
    def test_anchor_views_equal_supermin(self, gaps):
        target = views.supermin_view(gaps)
        for idx, direction in views.supermin_anchors(gaps):
            view = views.cw_view(gaps, idx) if direction == CW else views.ccw_view(gaps, idx)
            assert view == target


class TestNodeView:
    def test_node_view_is_min_of_two(self):
        gaps = (0, 1, 3)
        assert views.node_view(gaps, 0) == min((0, 1, 3), (3, 1, 0))

    @given(gap_cycles, st.integers(min_value=0, max_value=7))
    def test_node_view_ge_supermin(self, gaps, idx):
        idx %= len(gaps)
        assert views.node_view(gaps, idx) >= views.supermin_view(gaps)


class TestSuperminIntervals:
    def test_unique_for_rigid(self):
        assert views.supermin_interval_indices((0, 1, 3)) == [0]

    def test_two_for_axis_not_through_supermin(self):
        # (0, 2, 0, 2): periodic with period n/2; two supermin intervals.
        assert len(views.supermin_interval_indices((0, 2, 0, 2))) == 2

    def test_many_for_strongly_periodic(self):
        assert len(views.supermin_interval_indices((1, 1, 1, 1))) == 4

    @given(gap_cycles)
    def test_at_least_one(self, gaps):
        assert len(views.supermin_interval_indices(gaps)) >= 1
