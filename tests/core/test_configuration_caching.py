"""Caching must never change derived quantities.

``Configuration`` memoises its derived quantities and ``repro.core.cyclic``
keeps per-process LRU caches for the canonical forms.  These tests
property-check the cached implementations against the uncached
brute-force definitions on random configurations.
"""

import random

from repro.core.configuration import Configuration
from repro.core.cyclic import (
    all_dihedral_images,
    canonical_dihedral,
    is_reflectively_symmetric,
    is_rotationally_symmetric,
    reflection_matches,
    rotate,
    smallest_period,
)
from repro.core.symmetry import symmetry_axes


def _random_configurations(count, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        n = rng.randrange(4, 16)
        k = rng.randrange(1, n + 1)
        out.append(Configuration.from_occupied(n, rng.sample(range(n), k)))
    return out


def _brute_canonical_dihedral(seq):
    return min(all_dihedral_images(seq))


def _brute_smallest_period(seq):
    items = tuple(seq)
    n = len(items)
    for p in range(1, n + 1):
        if n % p == 0 and rotate(items, p) == items:
            return p
    return n


class TestCanonicalFormCaches:
    def test_canonical_dihedral_matches_brute_force(self):
        rng = random.Random(1)
        for _ in range(300):
            gaps = tuple(rng.randrange(0, 5) for _ in range(rng.randrange(1, 12)))
            expected = _brute_canonical_dihedral(gaps)
            # Ask twice: the second call exercises the cache-hit path.
            assert canonical_dihedral(gaps) == expected
            assert canonical_dihedral(gaps) == expected

    def test_smallest_period_matches_brute_force(self):
        rng = random.Random(2)
        for _ in range(300):
            gaps = tuple(rng.randrange(0, 3) for _ in range(rng.randrange(1, 13)))
            expected = _brute_smallest_period(gaps)
            assert smallest_period(gaps) == expected
            assert smallest_period(gaps) == expected

    def test_reflection_matches_returns_fresh_list(self):
        gaps = (0, 1, 0, 1)
        first = reflection_matches(gaps)
        first.append(99)  # mutating the result must not poison the cache
        assert 99 not in reflection_matches(gaps)

    def test_unhashable_sequences_fall_back(self):
        gaps = ([0], [1], [0], [1])
        assert canonical_dihedral(gaps) == _brute_canonical_dihedral(gaps)
        assert smallest_period(gaps) == 2
        assert reflection_matches(gaps) != []


class TestConfigurationMemoisation:
    def test_derived_quantities_match_uncached_definitions(self):
        for configuration in _random_configurations(150, seed=3):
            gaps = configuration.gaps()
            # Repeat every check twice so both the compute and the
            # memo-hit paths are compared against the raw definitions.
            for _ in range(2):
                assert configuration.canonical_gaps() == _brute_canonical_dihedral(gaps)
                assert configuration.is_periodic == is_rotationally_symmetric(gaps)
                assert configuration.is_symmetric == is_reflectively_symmetric(gaps)
                assert configuration.symmetry_axes() == symmetry_axes(
                    configuration.support, configuration.n
                )

    def test_memoised_collections_are_fresh_copies(self):
        configuration = Configuration.from_occupied(9, [0, 1, 4, 6])
        blocks = configuration.blocks()
        intervals = configuration.intervals()
        anchors = configuration.supermin_anchors()
        axes = configuration.symmetry_axes()
        for collection in (blocks, intervals, anchors, axes):
            collection.clear()
        assert configuration.blocks() != []
        assert configuration.intervals() != []
        assert configuration.supermin_anchors() != []
        assert configuration.symmetry_axes() == symmetry_axes(
            configuration.support, configuration.n
        )

    def test_mutation_returns_instances_with_their_own_caches(self):
        configuration = Configuration.from_occupied(10, [0, 2, 5, 6])
        before = configuration.canonical_gaps()
        moved = configuration.move_robot(0, 9)
        assert configuration.canonical_gaps() == before
        assert moved.canonical_gaps() == _brute_canonical_dihedral(moved.gaps())
