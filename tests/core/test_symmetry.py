"""Unit tests for :mod:`repro.core.symmetry`."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.symmetry import (
    Axis,
    is_periodic_support,
    is_rigid_support,
    is_symmetric_support,
    reflect_node,
    reflection_symmetries,
    rotate_node,
    rotation_symmetries,
    symmetry_axes,
)


@st.composite
def supports(draw, min_n=3, max_n=12):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    k = draw(st.integers(min_value=1, max_value=n))
    nodes = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k, unique=True)
    )
    return n, frozenset(nodes)


class TestElementaryMaps:
    def test_rotate_node(self):
        assert rotate_node(5, 3, 7) == 1

    def test_reflect_node(self):
        assert reflect_node(2, 0, 7) == 5
        assert reflect_node(0, 0, 7) == 0

    @given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    def test_reflection_is_involution(self, x, c):
        n = 21
        assert reflect_node(reflect_node(x, c, n), c, n) == x


class TestSymmetryPredicates:
    def test_evenly_spaced_is_periodic(self):
        assert is_periodic_support({0, 3, 6}, 9)
        assert rotation_symmetries({0, 3, 6}, 9) == [3, 6]

    def test_single_node_symmetric_not_periodic(self):
        assert is_symmetric_support({2}, 7)
        assert not is_periodic_support({2}, 7)
        assert not is_rigid_support({2}, 7)

    def test_rigid_example(self):
        assert is_rigid_support({0, 1, 2, 4}, 9)

    def test_symmetric_example(self):
        # Axis through node 1 and the opposite edge.
        assert is_symmetric_support({0, 1, 2, 5}, 8)

    @given(supports())
    def test_rotating_support_preserves_classification(self, data):
        n, support = data
        shifted = {(x + 1) % n for x in support}
        assert is_periodic_support(support, n) == is_periodic_support(shifted, n)
        assert is_symmetric_support(support, n) == is_symmetric_support(shifted, n)

    @given(supports())
    def test_full_ring_is_periodic(self, data):
        n, _ = data
        assert is_periodic_support(set(range(n)), n)


class TestAxes:
    def test_axes_of_symmetric_configuration(self):
        axes = symmetry_axes({0, 1, 2, 5}, 8)
        assert len(axes) == 1
        axis = axes[0]
        assert isinstance(axis, Axis)
        assert axis.passes_through_node(1)
        assert axis.passes_through_node(5)
        assert axis.node_anchors() == [1, 5]

    def test_axes_of_rigid_configuration(self):
        assert symmetry_axes({0, 1, 2, 4}, 9) == []

    def test_axis_count_matches_reflection_count(self):
        support = {0, 2, 4, 6}
        n = 8
        assert len(symmetry_axes(support, n)) == len(reflection_symmetries(support, n))

    @given(supports())
    def test_axes_fix_the_support(self, data):
        n, support = data
        for axis in symmetry_axes(support, n):
            c = axis.reflection_index
            assert {reflect_node(x, c, n) for x in support} == set(support)
