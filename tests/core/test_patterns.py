"""Unit tests for the view-pattern language of Lemmas 3-5."""

import pytest

from repro.core.configuration import Configuration
from repro.core.patterns import (
    Group,
    Lit,
    Pattern,
    Repeat,
    group_plus,
    group_star,
    literal,
    plus,
    star,
    times,
)


class TestElements:
    def test_literal(self):
        assert literal(3) == Lit(3)

    def test_star_plus_times(self):
        assert star(0) == Repeat(Lit(0), 0, None)
        assert plus(1) == Repeat(Lit(1), 1, None)
        assert times(0, 4) == Repeat(Lit(0), 4, 4)

    def test_invalid_repeat_counts(self):
        with pytest.raises(ValueError):
            Repeat(Lit(0), -1)
        with pytest.raises(ValueError):
            Repeat(Lit(0), 3, 2)

    def test_invalid_element_type(self):
        with pytest.raises(TypeError):
            Pattern("zero")


class TestSimpleMatching:
    def test_exact_sequence(self):
        assert Pattern(0, 1, 3).matches((0, 1, 3))
        assert not Pattern(0, 1, 3).matches((0, 1, 2))
        assert not Pattern(0, 1, 3).matches((0, 1, 3, 0))

    def test_star_matches_zero_or_more(self):
        pattern = Pattern(0, star(1), 2)
        assert pattern.matches((0, 2))
        assert pattern.matches((0, 1, 2))
        assert pattern.matches((0, 1, 1, 1, 2))
        assert not pattern.matches((0, 1, 1))

    def test_plus_requires_at_least_one(self):
        pattern = Pattern(0, plus(1), 2)
        assert not pattern.matches((0, 2))
        assert pattern.matches((0, 1, 2))
        assert pattern.matches((0, 1, 1, 2))

    def test_times(self):
        pattern = Pattern(times(0, 3), 1)
        assert pattern.matches((0, 0, 0, 1))
        assert not pattern.matches((0, 0, 1))
        assert not pattern.matches((0, 0, 0, 0, 1))

    def test_backtracking_with_ambiguous_star(self):
        # The star must not greedily swallow the final literal.
        pattern = Pattern(star(1), 1)
        assert pattern.matches((1,))
        assert pattern.matches((1, 1, 1))

    def test_empty_pattern_matches_empty_sequence(self):
        assert Pattern().matches(())
        assert not Pattern().matches((1,))


class TestGroups:
    def test_group_plus(self):
        # {0,1}+ : one or more repetitions of the pair.
        pattern = Pattern(group_plus(0, 1))
        assert pattern.matches((0, 1))
        assert pattern.matches((0, 1, 0, 1))
        assert not pattern.matches(())
        assert not pattern.matches((0, 1, 0))

    def test_group_star(self):
        pattern = Pattern(2, group_star(0, 1), 2)
        assert pattern.matches((2, 2))
        assert pattern.matches((2, 0, 1, 2))
        assert pattern.matches((2, 0, 1, 0, 1, 2))
        assert not pattern.matches((2, 0, 2))

    def test_nested_group_object(self):
        grp = Group(0, Lit(1))
        assert grp.items == (Lit(0), Lit(1))


class TestPaperPatterns:
    def test_lemma4_condition5(self):
        """Pattern (0, 1, 1+, 2) from Lemma 4."""
        pattern = Pattern(0, 1, plus(1), 2)
        assert pattern.matches((0, 1, 1, 2))
        assert pattern.matches((0, 1, 1, 1, 1, 2))
        assert not pattern.matches((0, 1, 2))
        assert not pattern.matches((0, 1, 1, 3))

    @pytest.mark.parametrize("l1", [2, 3, 4])
    def test_lemma4_condition6(self, l1):
        """Pattern (0^{l1}, 1, {0^{l1-1}, 1}+, 0^{l1-2}, 1) from Lemma 4."""
        pattern = Pattern(
            times(0, l1), 1, group_plus(times(0, l1 - 1), 1), times(0, l1 - 2), 1
        )
        one_rep = (0,) * l1 + (1,) + (0,) * (l1 - 1) + (1,) + (0,) * (l1 - 2) + (1,)
        two_rep = (
            (0,) * l1 + (1,) + ((0,) * (l1 - 1) + (1,)) * 2 + (0,) * (l1 - 2) + (1,)
        )
        assert pattern.matches(one_rep)
        assert pattern.matches(two_rep)
        assert not pattern.matches((0,) * l1 + (1,) + (0,) * (l1 - 2) + (1,))

    def test_example_from_paper_text(self):
        """The paper's example: (0,0,0,1,...,1,2,2,...,2) belongs to (0{3}, 1*, 2+)."""
        pattern = Pattern(times(0, 3), star(1), plus(2))
        assert pattern.matches((0, 0, 0, 1, 1, 2, 2, 2))
        assert pattern.matches((0, 0, 0, 2))
        assert not pattern.matches((0, 0, 1, 2))


class TestConfigurationMembership:
    def test_configuration_belongs_to_pattern(self):
        # Supermin view (0, 1, 1, 2): the configuration Cs of the paper.
        cfg = Configuration.from_gaps((0, 1, 1, 2))
        assert Pattern(0, 1, plus(1), 2).matches_configuration(cfg)

    def test_configuration_not_in_pattern(self):
        cfg = Configuration.from_gaps((0, 0, 1, 3))
        assert not Pattern(0, 1, plus(1), 2).matches_configuration(cfg)

    def test_membership_checks_all_views(self):
        # A pattern that only matches one reading direction of one node.
        cfg = Configuration.from_gaps((3, 1, 0))
        assert Pattern(0, 1, 3).matches_configuration(cfg)

    def test_repr_is_informative(self):
        rendered = repr(Pattern(0, plus(1), times(2, 3), group_star(0, 1)))
        assert "0" in rendered and "+" in rendered and "{3}" in rendered
