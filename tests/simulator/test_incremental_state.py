"""Property tests guarding the incremental simulation core.

The engine maintains occupancy counts, a node-to-robots index, a pending
set and a versioned configuration cache incrementally; these tests pin
the invariant that after *any* activation sequence the incremental state
is indistinguishable from a from-scratch rebuild, and that the decision
cache never changes a trace.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.align import AlignAlgorithm
from repro.algorithms.baselines import GreedyGatherBaseline, SweepAlgorithm
from repro.algorithms.gathering import GatheringAlgorithm
from repro.core.configuration import Configuration
from repro.scheduler import (
    AsynchronousScheduler,
    SequentialScheduler,
    SynchronousScheduler,
)
from repro.simulator.engine import Simulator

RIGID_START = Configuration.from_occupied(12, [0, 2, 5, 6, 9])


def make_scheduler(name, seed):
    if name == "sequential":
        return SequentialScheduler()
    if name == "synchronous":
        return SynchronousScheduler()
    return AsynchronousScheduler(seed=seed)


def assert_incremental_state_consistent(engine):
    """The incremental engine state must equal a from-scratch rebuild."""
    rebuilt = Configuration.from_positions(engine.ring_size, engine.positions)
    assert engine.configuration == rebuilt
    assert engine.configuration.counts == rebuilt.counts
    assert engine.configuration.gaps() == rebuilt.gaps()
    for node in range(engine.ring_size):
        expected = tuple(
            r.robot_id for r in engine.robots() if r.position == node
        )
        assert engine.robots_at(node) == expected
    assert engine.pending_robots() == tuple(
        r.robot_id for r in engine.robots() if r.has_pending_move
    )


class TestIncrementalStateEquivalence:
    @pytest.mark.parametrize("scheduler_name", ["sequential", "synchronous", "asynchronous"])
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_long_run_matches_rebuild(self, scheduler_name, seed):
        engine = Simulator(
            AlignAlgorithm(),
            RIGID_START,
            scheduler=make_scheduler(scheduler_name, seed),
            presentation_seed=seed,
        )
        versions = [engine.state_version]
        for _ in range(80):
            engine.step()
            versions.append(engine.state_version)
        assert_incremental_state_consistent(engine)
        assert versions == sorted(versions)  # the state version is monotonic

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_multiplicities_tracked_through_gathering(self, seed):
        engine = Simulator(
            GatheringAlgorithm(),
            Configuration.from_occupied(11, [0, 1, 2, 3, 5]),
            scheduler=make_scheduler("asynchronous", seed),
            exclusive=False,
            multiplicity_detection=True,
            presentation_seed=seed,
        )
        for _ in range(60):
            engine.step()
        assert_incremental_state_consistent(engine)

    def test_state_checked_after_every_step(self):
        engine = Simulator(SweepAlgorithm(), Configuration.from_gaps((3,) * 5), chirality=True)
        for _ in range(50):
            engine.step()
            assert_incremental_state_consistent(engine)

    def test_initial_configuration_object_is_reused(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(AlignAlgorithm(), cfg)
        # Satellite: the validated initial configuration is the version-0
        # cache entry — the same object, not an equal rebuild.
        assert engine.configuration is cfg
        assert engine.state_version == 0

    def test_looks_share_one_configuration_object(self):
        engine = Simulator(AlignAlgorithm(), RIGID_START, scheduler=SynchronousScheduler())
        first = engine.configuration
        assert engine.configuration is first  # same version, same object
        engine.step()


def trace_fingerprint(trace):
    """Deterministic byte serialisation of everything a trace records."""
    parts = [repr(trace.initial_positions), repr(trace.initial_configuration.counts)]
    for event in trace.events:
        parts.append(
            repr(
                (
                    event.step,
                    event.kind.value,
                    event.robots,
                    tuple((m.robot_id, m.source, m.target) for m in event.moves),
                    event.configuration_after.counts,
                    event.collision,
                )
            )
        )
    return "\n".join(parts).encode()


class TestDecisionCache:
    @pytest.mark.parametrize("scheduler_name", ["sequential", "synchronous", "asynchronous"])
    @pytest.mark.parametrize("algorithm_factory", [AlignAlgorithm, GreedyGatherBaseline])
    def test_cached_and_uncached_traces_byte_identical(self, scheduler_name, algorithm_factory):
        traces = []
        for use_cache in (True, False):
            engine = Simulator(
                algorithm_factory(),
                RIGID_START,
                scheduler=make_scheduler(scheduler_name, seed=7),
                presentation_seed=42,
                collision_policy="record",
                decision_cache=use_cache,
            )
            engine.run(120)
            traces.append(trace_fingerprint(engine.trace))
        assert traces[0] == traces[1]

    def test_cache_hits_on_repeated_views(self):
        engine = Simulator(
            SweepAlgorithm(), Configuration.from_gaps((4,) * 6), chirality=True
        )
        engine.run(60)
        cache = engine.decision_cache
        assert cache is not None
        assert cache.hits > 0
        assert cache.misses <= len(cache) + cache.maxsize

    def test_cache_disabled_means_no_cache(self):
        engine = Simulator(AlignAlgorithm(), RIGID_START, decision_cache=False)
        assert engine.decision_cache is None
        engine.run(10)

    def test_cache_eviction_is_bounded(self):
        from repro.model.algorithm import DecisionCache

        cache = DecisionCache(maxsize=2)
        engine = Simulator(SweepAlgorithm(), Configuration.from_gaps((4,) * 6), chirality=True)
        # Route the engine through the tiny cache to exercise eviction.
        engine._decision_cache = cache
        engine.run(40)
        assert len(cache) <= 2

    def test_invalid_cache_size_rejected(self):
        from repro.model.algorithm import DecisionCache

        with pytest.raises(ValueError):
            DecisionCache(maxsize=0)
