"""Unit tests for the simulation engine and trace."""

import pytest

from repro.core.configuration import Configuration
from repro.core.errors import (
    CollisionError,
    ExclusivityViolationError,
    InvalidConfigurationError,
    SimulationLimitError,
)
from repro.algorithms.align import AlignAlgorithm
from repro.algorithms.baselines import IdleAlgorithm, SweepAlgorithm
from repro.model.algorithm import Algorithm
from repro.model.decisions import Decision
from repro.scheduler import (
    Activation,
    AsynchronousScheduler,
    ScriptedScheduler,
    SequentialScheduler,
    SynchronousScheduler,
)
from repro.simulator.engine import Simulator
from repro.simulator.runner import run_gathering, run_to_configuration, simulate


class AlwaysMoveFirstView(Algorithm):
    """Pathological algorithm that moves blindly (can collide)."""

    name = "always-move"

    def compute(self, snapshot):
        return Decision.move_toward(0)


class TestConstruction:
    def test_from_configuration(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg)
        assert engine.ring_size == 8
        assert engine.num_robots == 3
        assert engine.positions == (0, 3, 5)
        assert engine.configuration == cfg

    def test_from_positions(self):
        engine = Simulator(
            IdleAlgorithm(), [1, 1, 4], ring_size=7, exclusive=False, multiplicity_detection=True
        )
        assert engine.num_robots == 3
        assert engine.configuration.multiplicity(1) == 2
        assert engine.robots_at(1) == (0, 1)

    def test_positions_require_ring_size(self):
        with pytest.raises(InvalidConfigurationError):
            Simulator(IdleAlgorithm(), [0, 1, 2])

    def test_exclusive_rejects_multiplicities(self):
        with pytest.raises(ExclusivityViolationError):
            Simulator(IdleAlgorithm(), [1, 1, 4], ring_size=7)

    def test_collision_policy_validated(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        with pytest.raises(ValueError):
            Simulator(IdleAlgorithm(), cfg, collision_policy="ignore")


class TestStepping:
    def test_idle_algorithm_never_moves(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg)
        trace = engine.run(20)
        assert trace.total_moves == 0
        assert engine.configuration == cfg
        assert all(r.idles > 0 for r in engine.robots())

    def test_step_counts_and_trace_growth(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg)
        engine.run(7)
        assert engine.step_count == 7
        assert engine.trace.num_steps == 7

    def test_sweep_moves_with_chirality(self):
        cfg = Configuration.from_occupied(6, [0, 3])
        engine = Simulator(SweepAlgorithm(), cfg, chirality=True)
        event = engine.step()  # robot 0 moves clockwise to node 1
        assert len(event.moves) == 1
        assert event.moves[0].source == 0
        assert event.moves[0].target == 1

    def test_exclusivity_collision_raises(self):
        # The first sequentially-activated robot blindly moves clockwise onto
        # its occupied neighbour.
        cfg = Configuration.from_occupied(5, [0, 1, 3])
        engine = Simulator(AlwaysMoveFirstView(), cfg, chirality=True)
        with pytest.raises(CollisionError):
            engine.run(5)

    def test_collision_policy_record(self):
        cfg = Configuration.from_occupied(5, [0, 1, 3])
        engine = Simulator(
            AlwaysMoveFirstView(),
            cfg,
            chirality=True,
            collision_policy="record",
        )
        engine.run(1)
        assert engine.trace.had_collision

    def test_async_scheduler_produces_look_and_move_events(self):
        cfg = Configuration.from_occupied(10, [0, 4, 7])
        engine = Simulator(
            SweepAlgorithm(), cfg, scheduler=AsynchronousScheduler(seed=1), chirality=True
        )
        engine.run(50)
        kinds = {event.kind.value for event in engine.trace.events}
        assert "look" in kinds
        assert "move" in kinds

    def test_scripted_pending_move_uses_outdated_snapshot(self):
        # Robot 0 looks, then robot 1 completes a full cycle, then robot 0
        # executes a move computed from the outdated snapshot.
        cfg = Configuration.from_occupied(10, [0, 4, 7])
        script = [
            Activation.look([0]),
            Activation.cycle([1]),
            Activation.move([0]),
        ]
        engine = Simulator(
            SweepAlgorithm(), cfg, scheduler=ScriptedScheduler(script), chirality=True
        )
        engine.run(3)
        assert engine.positions == (1, 5, 7)


class TestRunHelpers:
    def test_run_until_goal(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9])
        engine = Simulator(AlignAlgorithm(), cfg)
        trace = engine.run_until(lambda sim: sim.configuration.is_c_star(), 600)
        assert trace.final_configuration.is_c_star()
        assert trace.stopped_reason == "goal-reached"

    def test_run_until_budget_exhausted(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg)
        with pytest.raises(SimulationLimitError):
            engine.run_until(lambda sim: sim.configuration.num_occupied == 1, 10)

    def test_run_until_goal_already_met(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg)
        trace = engine.run_until(lambda sim: True, 10)
        assert trace.num_steps == 0

    def test_run_until_stable(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9])
        engine = Simulator(AlignAlgorithm(), cfg)
        trace = engine.run_until_stable(600)
        assert trace.stopped_reason == "stable"
        assert trace.final_configuration.is_c_star()

    def test_simulate_helper(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        trace, engine = simulate(IdleAlgorithm(), cfg, steps=5)
        assert trace.num_steps == 5
        assert engine.configuration == cfg

    def test_run_to_configuration_helper(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9])
        trace, _ = run_to_configuration(
            AlignAlgorithm(), cfg, lambda c: c.is_c_star()
        )
        assert trace.final_configuration.is_c_star()

    def test_simulate_forwards_collision_policy_and_chirality(self):
        cfg = Configuration.from_occupied(5, [0, 1, 3])
        trace, engine = simulate(
            AlwaysMoveFirstView(),
            cfg,
            steps=1,
            collision_policy="record",
            chirality=True,
        )
        assert engine.exclusive
        assert trace.had_collision  # recorded instead of raising

    def test_simulate_forwarded_collision_policy_is_validated(self):
        cfg = Configuration.from_occupied(5, [0, 1, 3])
        with pytest.raises(ValueError):
            simulate(AlwaysMoveFirstView(), cfg, collision_policy="ignore")

    def test_run_to_configuration_forwards_collision_policy_and_chirality(self):
        # With chirality, SweepAlgorithm deterministically walks robots
        # clockwise; "record" lets the blind mover pile up without raising.
        cfg = Configuration.from_occupied(5, [0, 1, 3])
        trace, engine = run_to_configuration(
            AlwaysMoveFirstView(),
            cfg,
            lambda c: c.num_occupied == 2,
            max_steps=1,
            collision_policy="record",
            chirality=True,
        )
        assert trace.had_collision
        assert engine.configuration.num_occupied == 2

    def test_run_gathering_forwards_chirality(self):
        captured = []

        class Capture(Algorithm):
            name = "capture"

            def compute(self, snapshot):
                captured.append(snapshot.views[0])
                return Decision.idle()

        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        with pytest.raises(SimulationLimitError):  # idle robots never gather
            run_gathering(Capture(), cfg, max_steps=40, chirality=True)
        # With chirality the clockwise view is always presented first, so
        # each robot reports a stable first view across activations.
        assert len(set(captured)) <= 4


class TestTraceQueries:
    def test_trace_moves_and_periods(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9])
        engine = Simulator(AlignAlgorithm(), cfg)
        trace = engine.run_until(lambda sim: sim.configuration.is_c_star(), 600)
        assert trace.total_moves == len(trace.all_moves())
        assert trace.max_simultaneous_moves() == 1
        assert sum(trace.moves_per_robot().values()) == trace.total_moves
        assert trace.first_step_where(lambda c: c.is_c_star()) is not None
        assert "Trace(" in trace.summary()

    def test_configuration_period_detection(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg)
        engine.run(3)
        repeat = engine.trace.configuration_period()
        assert repeat == (0, 1)

    def test_iter_moves_matches_all_moves(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9])
        engine = Simulator(AlignAlgorithm(), cfg)
        engine.run(30)
        assert list(engine.trace.iter_moves()) == engine.trace.all_moves()


class TestSnapshotDelivery:
    def test_multiplicity_flag_delivered(self):
        captured = {}

        class Capture(Algorithm):
            name = "capture"

            def compute(self, snapshot):
                captured.setdefault("mult", []).append(snapshot.on_multiplicity)
                return Decision.idle()

        engine = Simulator(
            Capture(),
            [2, 2, 6],
            ring_size=9,
            exclusive=False,
            multiplicity_detection=True,
        )
        engine.run(3)
        assert True in captured["mult"] and False in captured["mult"]

    def test_multiplicity_flag_hidden_without_capability(self):
        captured = []

        class Capture(Algorithm):
            name = "capture"

            def compute(self, snapshot):
                captured.append(snapshot.on_multiplicity)
                return Decision.idle()

        engine = Simulator(
            Capture(), [2, 2, 6], ring_size=9, exclusive=False, multiplicity_detection=False
        )
        engine.run(3)
        assert not any(captured)

    def test_presentation_order_varies_without_chirality(self):
        firsts = []

        class Capture(Algorithm):
            name = "capture"

            def compute(self, snapshot):
                firsts.append(snapshot.views[0])
                return Decision.idle()

        cfg = Configuration.from_occupied(9, [0, 1, 2, 4])
        engine = Simulator(Capture(), cfg, presentation_seed=123)
        engine.run(40)
        assert len(set(firsts)) > 1


class TestEngineSizeKnobs:
    def test_invalid_bounds_rejected(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        with pytest.raises(ValueError):
            Simulator(IdleAlgorithm(), cfg, config_pool_size=0)
        with pytest.raises(ValueError):
            Simulator(IdleAlgorithm(), cfg, decision_cache_size=0)

    def test_decision_cache_size_forwarded(self):
        cfg = Configuration.from_occupied(8, [0, 3, 5])
        engine = Simulator(IdleAlgorithm(), cfg, decision_cache_size=2)
        assert engine.decision_cache.maxsize == 2

    def test_runner_forwards_bounds(self):
        cfg = Configuration.from_occupied(9, [0, 1, 3, 6])
        baseline, _ = simulate(AlignAlgorithm(), cfg, steps=40, presentation_seed=4)
        bounded, _ = simulate(
            AlignAlgorithm(), cfg, steps=40, presentation_seed=4,
            decision_cache_size=1, config_pool_size=1,
        )
        assert baseline.canonical_bytes() == bounded.canonical_bytes()
