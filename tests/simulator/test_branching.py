"""Tests for the branching adversary driver."""

import pytest

from repro.algorithms import AlignAlgorithm, GatheringAlgorithm, RingClearingAlgorithm
from repro.algorithms.baselines import IdleAlgorithm, SweepAlgorithm
from repro.core.configuration import Configuration
from repro.simulator.branching import IDLE, BranchingDriver, NodeActivation


class TestNodeOptions:
    def test_align_single_mover_deterministic(self):
        driver = BranchingDriver(AlignAlgorithm(), 9)
        counts = (1, 1, 0, 1, 0, 0, 1, 0, 0)
        options = driver.node_options(counts)
        movers = {node: opts for node, opts in options.items() if opts != (IDLE,)}
        assert len(movers) == 1
        (node, opts), = movers.items()
        assert len(opts) == 1 and opts[0] in (-1, 1)

    def test_symmetric_views_expose_both_directions(self):
        # Two antipodal robots: each sees identical views, so the
        # adversary owns the direction of any move.
        driver = BranchingDriver(GatheringAlgorithm(), 6, multiplicity_detection=True)
        options = driver.node_options((1, 0, 0, 1, 0, 0))
        assert options == {0: (-1, 1), 3: (-1, 1)}

    def test_presentation_dependence_surfaces_idle_and_move(self):
        # Sweep moves iff the first presented view starts with a gap, so
        # a robot with one empty and one occupied neighbour can be driven
        # to idle or to move by choosing the presentation order.
        driver = BranchingDriver(SweepAlgorithm(), 5)
        options = driver.node_options((1, 1, 0, 0, 0))
        assert options[0] == (-1, 0) or options[0] == (0, 1)

    def test_idle_algorithm_only_idles(self):
        driver = BranchingDriver(IdleAlgorithm(), 6)
        options = driver.node_options((1, 0, 1, 0, 1, 0))
        assert all(opts == (IDLE,) for opts in options.values())

    @pytest.mark.parametrize(
        "algorithm,multiplicity",
        [
            (AlignAlgorithm(), False),
            (GatheringAlgorithm(), True),
            (SweepAlgorithm(), False),
            (RingClearingAlgorithm(), False),
        ],
    )
    def test_options_match_direct_snapshot_computation(self, algorithm, multiplicity):
        """The canonical-class mapping and the global-plan fast path must
        reproduce the exact per-snapshot option sets on every occupancy
        vector — including reflections (direction negation), gathering
        multiplicities and the presentation-dependent sweep baseline."""
        import itertools

        n, k = 7, 3
        fast = BranchingDriver(algorithm, n, multiplicity_detection=multiplicity)
        oracle = BranchingDriver(algorithm, n, multiplicity_detection=multiplicity)
        for support in itertools.combinations(range(n), k):
            counts = tuple(1 if v in support else 0 for v in range(n))
            try:
                expected = oracle._compute_options_snapshots(counts)
            except Exception as exc:  # noqa: BLE001 - mirror error below
                with pytest.raises(type(exc)):
                    fast.node_options(counts)
                continue
            assert fast.node_options(counts) == expected, counts
        if multiplicity:
            # A vector with a tower exercises the on_multiplicity flag.
            counts = (2, 0, 1, 0, 0, 0, 0)
            assert fast.node_options(counts) == oracle._compute_options_snapshots(counts)

    def test_plan_fast_path_falls_back_on_non_adjacent_target(self):
        """A planner prescribing a 2-hop move must surface the legacy
        AlgorithmPreconditionError — also for symmetric-view nodes, and
        also once the fast path's self-check budget is exhausted."""
        from repro.core.errors import AlgorithmPreconditionError
        from repro.model.algorithm import GlobalRuleAlgorithm

        class TwoHopPlanner(GlobalRuleAlgorithm):
            name = "two-hop"

            def plan(self, configuration):
                node = configuration.support[0]
                return {node: (node + 2) % configuration.n}

        driver = BranchingDriver(TwoHopPlanner(), 6)
        driver._global_plan_checks = 0  # exercise the unchecked fast path
        with pytest.raises(AlgorithmPreconditionError):
            # Antipodal robots: both views coincide, so the symmetric
            # branch is the one that must still validate adjacency.
            driver.node_options((1, 0, 0, 1, 0, 0))

    def test_successors_wrapper_matches_compact_records(self):
        driver = BranchingDriver(AlignAlgorithm(), 9)
        counts = (1, 1, 0, 1, 0, 0, 1, 0, 0)
        for mode in ("ssync", "sequential"):
            records = driver.successors_compact(counts, mode)
            transitions = driver.successors(counts, mode)
            assert len(records) == len(transitions)
            for record, transition in zip(records, transitions):
                assert record[1] == transition.counts_after
                assert record[0] == tuple(
                    (a.node, a.idle, a.cw, a.ccw) for a in transition.profile
                )
                assert bool(record[4] & 1) == transition.moved
                assert bool(record[4] & 2) == transition.full
                assert bool(record[4] & 4) == transition.collision
                assert frozenset(
                    v for (v, _, _, _) in record[0]
                ) == transition.activated_nodes


class TestSuccessors:
    def test_full_flag_requires_every_robot(self):
        driver = BranchingDriver(AlignAlgorithm(), 9)
        counts = (1, 1, 0, 1, 0, 0, 1, 0, 0)
        transitions = driver.successors(counts)
        full = [t for t in transitions if t.full]
        assert len(full) == 1
        assert sum(a.activated for a in full[0].profile) == sum(counts)

    def test_idle_self_loop_present(self):
        driver = BranchingDriver(AlignAlgorithm(), 9)
        counts = (1, 1, 0, 1, 0, 0, 1, 0, 0)
        transitions = driver.successors(counts)
        assert any(t.counts_after == counts and not t.moved for t in transitions)

    def test_collision_flagged(self):
        # Two robots either side of one empty node, both driven into it.
        driver = BranchingDriver(SweepAlgorithm(), 5)
        transitions = driver.successors((1, 0, 1, 0, 0))
        collisions = [t for t in transitions if t.collision]
        assert collisions
        assert all(max(t.counts_after) > 1 for t in collisions)

    def test_sequential_activates_single_robot(self):
        driver = BranchingDriver(GatheringAlgorithm(), 6, multiplicity_detection=True)
        for transition in driver.successors((1, 0, 0, 1, 0, 0), "sequential"):
            assert sum(a.activated for a in transition.profile) == 1

    def test_successor_counts_preserve_robots(self):
        # A C*-type support with a pile, as reached mid-contraction.
        driver = BranchingDriver(GatheringAlgorithm(), 7, multiplicity_detection=True)
        counts = (1, 2, 0, 1, 0, 0, 0)
        for transition in driver.successors(counts):
            assert sum(transition.counts_after) == sum(counts)

    def test_unknown_mode_rejected(self):
        driver = BranchingDriver(IdleAlgorithm(), 5)
        with pytest.raises(ValueError):
            driver.successors((1, 0, 1, 0, 0), "async")

    def test_multiplicity_partial_activation(self):
        # Two robots piled on the contraction anchor of a C*-type
        # support: the adversary may release any subset of the pile.
        driver = BranchingDriver(GatheringAlgorithm(), 8, multiplicity_detection=True)
        counts = (2, 1, 0, 1, 0, 0, 0, 0)
        after = {t.counts_after for t in driver.successors(counts)}
        assert (1, 2, 0, 1, 0, 0, 0, 0) in after  # one of the two moved
        assert (0, 3, 0, 1, 0, 0, 0, 0) in after  # both moved


class TestReplay:
    def test_replay_matches_successors(self):
        driver = BranchingDriver(AlignAlgorithm(), 9)
        counts = (1, 1, 0, 1, 0, 0, 1, 0, 0)
        for transition in driver.successors(counts):
            assert driver.apply(counts, transition.profile) == transition.counts_after

    def test_replay_rejects_unoccupied_node(self):
        driver = BranchingDriver(IdleAlgorithm(), 5)
        with pytest.raises(ValueError):
            driver.apply((1, 0, 1, 0, 0), [NodeActivation(node=1, idle=1, cw=0, ccw=0)])

    def test_replay_rejects_overfull_activation(self):
        driver = BranchingDriver(IdleAlgorithm(), 5)
        with pytest.raises(ValueError):
            driver.apply((1, 0, 1, 0, 0), [NodeActivation(node=0, idle=2, cw=0, ccw=0)])

    def test_replay_rejects_impossible_outcome(self):
        driver = BranchingDriver(IdleAlgorithm(), 5)
        with pytest.raises(ValueError):
            driver.apply((1, 0, 1, 0, 0), [NodeActivation(node=0, idle=0, cw=1, ccw=0)])

    def test_replay_trajectory(self):
        driver = BranchingDriver(GatheringAlgorithm(), 6, multiplicity_detection=True)
        counts = (1, 0, 0, 1, 0, 0)
        transition = next(t for t in driver.successors(counts) if t.moved)
        trajectory = driver.replay(counts, [transition.profile])
        assert trajectory == [counts, transition.counts_after]


class TestEngineConsistency:
    def test_options_match_engine_decisions(self):
        """The option sets cover what the engine actually computes.

        The engine presents views in a seeded-random order; over many
        seeds the executed decision of each robot must stay inside the
        driver's option set for its node.
        """
        from repro.simulator.engine import Simulator

        configuration = Configuration.from_occupied(9, (0, 1, 3, 6))
        driver = BranchingDriver(AlignAlgorithm(), 9)
        options = driver.node_options(configuration.counts)
        for seed in range(20):
            engine = Simulator(AlignAlgorithm(), configuration, presentation_seed=seed)
            event = engine.step()
            for move in event.moves:
                direction = (move.target - move.source) % 9
                outcome = 1 if direction == 1 else -1
                assert outcome in options[move.source]
