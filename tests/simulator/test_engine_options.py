"""Tests for EngineOptions and the runner's legacy-keyword shim."""

import pytest

from repro import EngineOptions
from repro.algorithms.align import AlignAlgorithm
from repro.algorithms.gathering import GatheringAlgorithm
from repro.simulator.engine import Simulator
from repro.simulator.runner import run_gathering, simulate
from repro.workloads.generators import random_rigid_configuration

import random


def _start(n=12, k=5, seed=0):
    return random_rigid_configuration(n, k, random.Random(seed))


class TestEngineOptions:
    def test_defaults_and_jsonable_roundtrip(self):
        options = EngineOptions()
        assert EngineOptions.from_jsonable(options.to_jsonable()) == options

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineOptions(collision_policy="ignore")
        with pytest.raises(ValueError):
            EngineOptions(decision_cache_size=0)
        with pytest.raises(ValueError):
            EngineOptions(config_pool_size=0)
        with pytest.raises(ValueError):
            EngineOptions.from_jsonable({"chirality": True, "verbosity": 9})

    def test_with_overrides_revalidates(self):
        options = EngineOptions()
        assert options.with_overrides(chirality=True).chirality
        with pytest.raises(ValueError):
            options.with_overrides(collision_policy="ignore")

    def test_frozen(self):
        with pytest.raises(Exception):
            EngineOptions().chirality = True


class TestEngineIntegration:
    def test_engine_accepts_options_bundle(self):
        options = EngineOptions(presentation_seed=7, decision_cache=False)
        engine = Simulator(AlignAlgorithm(), _start(), options=options)
        assert engine.options == options
        assert engine.decision_cache is None

    def test_explicit_keyword_overrides_bundle(self):
        engine = Simulator(
            AlignAlgorithm(),
            _start(),
            options=EngineOptions(decision_cache=False),
            decision_cache=True,
        )
        assert engine.options.decision_cache is True
        assert engine.decision_cache is not None

    def test_options_and_keywords_trace_identically(self):
        baseline = Simulator(AlignAlgorithm(), _start(), presentation_seed=3)
        bundled = Simulator(
            AlignAlgorithm(), _start(), options=EngineOptions(presentation_seed=3)
        )
        baseline.run(60)
        bundled.run(60)
        assert baseline.trace.canonical_bytes() == bundled.trace.canonical_bytes()


class TestRunnerDeprecationShim:
    def test_legacy_keywords_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="presentation_seed"):
            trace, engine = simulate(
                AlignAlgorithm(), _start(), steps=20, presentation_seed=5
            )
        assert engine.options.presentation_seed == 5
        assert trace.num_steps == 20

    def test_legacy_and_options_traces_are_byte_identical(self):
        with pytest.warns(DeprecationWarning):
            legacy, _ = simulate(
                AlignAlgorithm(), _start(), steps=40, presentation_seed=4, chirality=True
            )
        modern, _ = simulate(
            AlignAlgorithm(),
            _start(),
            steps=40,
            options=EngineOptions(presentation_seed=4, chirality=True),
        )
        assert legacy.canonical_bytes() == modern.canonical_bytes()

    def test_options_path_does_not_warn(self, recwarn):
        simulate(AlignAlgorithm(), _start(), steps=5, options=EngineOptions())
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_unknown_keyword_still_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            simulate(AlignAlgorithm(), _start(), steps=5, warp_speed=9)

    def test_run_gathering_forces_model(self):
        cfg = _start(11, 4, seed=1)
        _, engine = run_gathering(GatheringAlgorithm(), cfg, max_steps=2000)
        assert engine.options.exclusive is False
        assert engine.options.multiplicity_detection is True

    def test_run_gathering_never_accepted_model_keywords(self):
        # These were TypeErrors before the options refactor and must stay so:
        # accepting exclusive=True here would break the gathering model.
        cfg = _start(11, 4, seed=1)
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_gathering(GatheringAlgorithm(), cfg, exclusive=True)
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_gathering(GatheringAlgorithm(), cfg, multiplicity_detection=False)
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_gathering(GatheringAlgorithm(), cfg, collision_policy="record")

    def test_invalid_legacy_value_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                simulate(AlignAlgorithm(), _start(), collision_policy="ignore")
