"""Golden-trace regression tests.

One committed byte-exact trace per task (algorithm, scheduler, seed
cell).  Any change to the engine, the schedulers, the decision cache or
the algorithms that alters a single executed step shows up as a byte
diff against these files.  The same cells are replayed with the decision
cache disabled and with the engine's LRU bounds forced to 1, asserting
the caches are pure optimisations.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/simulator/test_golden_traces.py
"""

import os

import pytest

from repro.algorithms import (
    AlignAlgorithm,
    GatheringAlgorithm,
    NminusThreeAlgorithm,
    RingClearingAlgorithm,
)
from repro.scheduler.asynchronous import AsynchronousScheduler
from repro.scheduler.sequential import SequentialScheduler
from repro.scheduler.synchronous import SemiSynchronousScheduler
from repro.simulator.engine import Simulator
from repro.workloads.generators import iter_rigid_configurations

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "golden")

#: One cell per task: name -> (factory of engine kwargs, steps).
CELLS = {
    "align-k4-n9-roundrobin-s1": dict(
        algorithm=AlignAlgorithm, k=4, n=9,
        scheduler=lambda: SequentialScheduler("round_robin"),
        seed=1, steps=60, gathering=False,
    ),
    "ring_clearing-k6-n11-ssync-s3": dict(
        algorithm=RingClearingAlgorithm, k=6, n=11,
        scheduler=lambda: SemiSynchronousScheduler(seed=3),
        seed=3, steps=120, gathering=False,
    ),
    "nminusthree-k7-n10-random-s5": dict(
        algorithm=NminusThreeAlgorithm, k=7, n=10,
        scheduler=lambda: SequentialScheduler("random", seed=5),
        seed=5, steps=100, gathering=False,
    ),
    "gathering-k4-n9-async-s7": dict(
        algorithm=GatheringAlgorithm, k=4, n=9,
        scheduler=lambda: AsynchronousScheduler(seed=7),
        seed=7, steps=400, gathering=True,
    ),
}


def run_cell(name, **engine_overrides):
    """Execute one golden cell and return its canonical trace bytes."""
    cell = CELLS[name]
    configuration = next(iter_rigid_configurations(cell["n"], cell["k"]))
    engine = Simulator(
        cell["algorithm"](),
        configuration,
        scheduler=cell["scheduler"](),
        presentation_seed=cell["seed"],
        exclusive=not cell["gathering"],
        multiplicity_detection=cell["gathering"],
        **engine_overrides,
    )
    engine.run(cell["steps"])
    return engine.trace.canonical_bytes()


def golden_path(name):
    return os.path.join(GOLDEN_DIR, f"trace_{name}.json")


@pytest.mark.parametrize("name", sorted(CELLS))
class TestGoldenTraces:
    def test_matches_committed_bytes(self, name):
        with open(golden_path(name), "rb") as handle:
            expected = handle.read()
        assert run_cell(name) == expected

    def test_decision_cache_off_is_byte_identical(self, name):
        with open(golden_path(name), "rb") as handle:
            expected = handle.read()
        assert run_cell(name, decision_cache=False) == expected

    def test_lru_bounds_of_one_are_byte_identical(self, name):
        """A configuration pool and decision cache bounded at 1 only
        change hit rates, never the executed steps."""
        with open(golden_path(name), "rb") as handle:
            expected = handle.read()
        assert run_cell(name, decision_cache_size=1, config_pool_size=1) == expected


def main():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in sorted(CELLS):
        payload = run_cell(name)
        with open(golden_path(name), "wb") as handle:
            handle.write(payload)
        print(f"wrote {golden_path(name)} ({len(payload)} bytes)")


if __name__ == "__main__":
    main()
