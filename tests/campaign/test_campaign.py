"""Tests for the parallel experiment-campaign subsystem."""

import json
import os

import pytest

from repro.campaign import (
    ResultStore,
    build_campaign,
    build_cells_campaign,
    derive_seed,
    run_campaign,
    run_experiment_campaign,
)
from repro.experiments.e1_configuration_census import run_unit as e1_run_unit


# Workers live at module level so the process pool can pickle them by
# reference.
def product_worker(unit):
    return {"row": [unit["k"], unit["n"], unit["k"] * unit["n"]], "passed": True}


def tagged_worker(unit):
    return {"row": [unit["k"], unit["n"], "second-run"], "passed": True}


def flaky_worker(unit):
    if unit["k"] == 5:
        raise ValueError(f"boom on {unit['unit_id']}")
    return product_worker(unit)


def crashing_worker(unit):
    if unit["k"] == 5 and unit["n"] == 12:
        os._exit(3)  # simulate a hard worker death (not an exception)
    return product_worker(unit)


class TestSpec:
    def test_build_campaign_grid_matches_suite(self):
        campaign = build_campaign("e7", "quick")
        assert campaign.name == "e7-quick"
        assert campaign.num_units == 6
        assert [u.index for u in campaign.units] == list(range(6))
        assert campaign.units[0].unit_id == "u000-k005-n012"

    def test_unit_ids_unique_even_for_duplicate_pairs(self):
        # The e7 full sweep contains (8, 30) twice (the n-sweep at fixed
        # k and the k-sweep at fixed n); ids and seeds must not collide
        # or resume would silently drop one grid cell.
        campaign = build_campaign("e7", "full")
        ids = [u.unit_id for u in campaign.units]
        assert len(set(ids)) == len(ids)
        duplicates = [u for u in campaign.units if (u.k, u.n) == (8, 30)]
        assert len(duplicates) == 2
        assert duplicates[0].seed != duplicates[1].seed

    def test_seeds_are_stable_and_distinct(self):
        campaign = build_campaign("e7", "quick")
        again = build_campaign("e7", "quick")
        assert [u.seed for u in campaign.units] == [u.seed for u in again.units]
        assert len({u.seed for u in campaign.units}) == campaign.num_units
        # Stable hash, not PYTHONHASHSEED-dependent hash():
        assert derive_seed(1, "e7", "quick", 5, 12) == derive_seed(1, "e7", "quick", 5, 12)
        assert derive_seed(1, "e7", "quick", 5, 12) != derive_seed(2, "e7", "quick", 5, 12)

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            build_campaign("e99")

    def test_cells_campaign_carries_extra_parameters(self):
        campaign = build_cells_campaign(
            "verify", "demo", "d", [(3, 6), (4, 8)],
            extra=(("task", "gathering"), ("adversary", "ssync")),
        )
        assert campaign.num_units == 2
        assert campaign.units[0].unit_id == "u000-k003-n006"
        unit = campaign.units[1].as_dict()
        assert unit["extra"] == {"task": "gathering", "adversary": "ssync"}
        # Same cells, same ids and seeds — the resume invariant.
        again = build_cells_campaign("verify", "demo", "d", [(3, 6), (4, 8)])
        assert [u.seed for u in again.units] == [u.seed for u in campaign.units]

    def test_default_units_have_empty_extra(self):
        campaign = build_campaign("e7", "quick")
        assert campaign.units[0].as_dict()["extra"] == {}


class TestDeterminism:
    def test_serial_and_parallel_aggregates_are_byte_identical(self, tmp_path):
        serial = run_experiment_campaign(
            "e1", "quick", e1_run_unit, jobs=1, store=str(tmp_path / "serial")
        )
        parallel = run_experiment_campaign(
            "e1", "quick", e1_run_unit, jobs=3, store=str(tmp_path / "parallel")
        )
        assert serial.summary_bytes() == parallel.summary_bytes()
        with open(serial.summary_path, "rb") as f1, open(parallel.summary_path, "rb") as f2:
            assert f1.read() == f2.read()

    def test_records_come_back_in_grid_order(self):
        report = run_campaign(build_campaign("e1", "quick"), product_worker, jobs=2)
        assert [r["index"] for r in report.records] == list(range(6))
        assert not report.failures


class TestResume:
    def test_resume_skips_completed_units(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = run_experiment_campaign(
            "e7", "quick", flaky_worker, jobs=1, store=store
        )
        failed = {r["unit_id"] for r in first.failures}
        assert failed  # k == 5 units errored
        # Second run with a distinguishable worker: only the failed units
        # are re-executed, completed ones come back verbatim from disk.
        second = run_experiment_campaign(
            "e7", "quick", tagged_worker, jobs=1, store=ResultStore(str(tmp_path))
        )
        assert set(second.resumed) == {
            r["unit_id"] for r in first.records if r["status"] == "ok"
        }
        for record in second.records:
            expected = "second-run" if record["unit_id"] in failed else record["k"] * record["n"]
            assert record["payload"]["row"][2] == expected
        assert not second.failures

    def test_resume_tolerates_torn_shard_line(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = build_campaign("e1", "quick")
        run_campaign(campaign, product_worker, store=store)
        shard = os.path.join(store.campaign_dir(campaign.name), "shard-0000.jsonl")
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"unit_id": "k004-n0')  # interrupted mid-write
        fresh = ResultStore(str(tmp_path))
        assert len(fresh.completed_unit_ids(campaign.name)) == campaign.num_units
        resumed = run_campaign(campaign, tagged_worker, store=fresh)
        assert len(resumed.resumed) == campaign.num_units

    def test_shards_rotate(self, tmp_path):
        store = ResultStore(str(tmp_path), shard_size=2)
        campaign = build_campaign("e1", "quick")
        run_campaign(campaign, product_worker, store=store)
        shards = [
            name
            for name in os.listdir(store.campaign_dir(campaign.name))
            if name.startswith("shard-")
        ]
        assert len(shards) == 3  # 6 units / 2 per shard

    def test_summary_document_strips_durations(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = build_campaign("e1", "quick")
        report = run_campaign(campaign, product_worker, store=store)
        with open(report.summary_path, "r", encoding="utf-8") as handle:
            summary = json.load(handle)
        assert summary["num_completed"] == campaign.num_units
        assert all("duration_s" not in unit for unit in summary["units"])
        # ... but the shards do keep the timing for humans to inspect.
        assert all("duration_s" in r for r in store.iter_records(campaign.name))


class TestFailureReporting:
    def test_worker_exception_is_recorded_not_raised(self):
        report = run_campaign(build_campaign("e7", "quick"), flaky_worker, jobs=1)
        failed = [r for r in report.records if r["status"] == "error"]
        assert failed and all(r["k"] == 5 for r in failed)
        assert "boom" in failed[0]["error"]["message"]
        assert "ValueError" in failed[0]["error"]["traceback"]
        ok = [r for r in report.records if r["status"] == "ok"]
        assert len(ok) + len(failed) == report.campaign.num_units

    def test_worker_exception_in_parallel_mode(self):
        report = run_campaign(build_campaign("e7", "quick"), flaky_worker, jobs=2)
        assert {r["unit_id"] for r in report.failures} == {
            r["unit_id"]
            for r in run_campaign(
                build_campaign("e7", "quick"), flaky_worker, jobs=1
            ).failures
        }

    def test_worker_process_crash_survived(self):
        # os._exit kills the worker process outright; the executor must
        # rebuild the pool, isolate the poisoned unit and keep the rest.
        report = run_campaign(
            build_campaign("e7", "quick"), crashing_worker, jobs=2, chunk_size=2
        )
        assert len(report.records) == report.campaign.num_units
        crashed = [r for r in report.records if r["status"] == "crashed"]
        assert [r["unit_id"] for r in crashed] == ["u000-k005-n012"]
        ok = [r for r in report.records if r["status"] == "ok"]
        assert len(ok) == report.campaign.num_units - 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(build_campaign("e1", "quick"), product_worker, jobs=0)
