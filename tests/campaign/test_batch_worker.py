"""Tests for whole-batch unit claiming in the campaign executor."""

from repro.campaign import build_campaign, execute_batch, run_campaign
from repro.experiments.e7_scaling import run_unit, run_units_batched


# Module-level workers so the process pool can pickle them by reference.
def product_worker(unit):
    return {"row": [unit["k"], unit["n"], unit["k"] * unit["n"]], "passed": True}


def batched_product_worker(units):
    return [product_worker(unit) for unit in units]


def raising_batch_worker(units):
    raise RuntimeError("batch path unavailable")


def short_batch_worker(units):
    return [product_worker(unit) for unit in units[:-1]]


def flaky_worker(unit):
    if unit["k"] == 8:
        raise ValueError(f"boom on {unit['unit_id']}")
    return product_worker(unit)


def _strip_volatile(records):
    return [
        {key: value for key, value in record.items() if key != "duration_s"}
        for record in records
    ]


class TestBatchClaiming:
    def test_summary_identical_with_and_without_batch_worker(self):
        campaign = build_campaign("e7", "quick")
        plain = run_campaign(campaign, product_worker)
        batched = run_campaign(
            campaign, product_worker, batch_worker=batched_product_worker
        )
        assert batched.summary_bytes() == plain.summary_bytes()

    def test_parallel_batched_summary_identical(self):
        campaign = build_campaign("e7", "quick")
        plain = run_campaign(campaign, product_worker)
        batched = run_campaign(
            campaign, product_worker, jobs=2, batch_worker=batched_product_worker
        )
        assert batched.summary_bytes() == plain.summary_bytes()

    def test_raising_batch_worker_falls_back_per_unit(self):
        campaign = build_campaign("e7", "quick")
        plain = run_campaign(campaign, flaky_worker)
        batched = run_campaign(
            campaign, flaky_worker, batch_worker=raising_batch_worker
        )
        # Error records (status, message, traceback) survive byte-identically
        # because the fallback path *is* the per-unit path.
        assert batched.summary_bytes() == plain.summary_bytes()
        assert {r["status"] for r in batched.records} == {"ok", "error"}

    def test_wrong_payload_count_falls_back(self):
        units = [
            {"index": i, "unit_id": f"u{i}", "k": 2, "n": 5 + i, "samples": 1}
            for i in range(3)
        ]
        records = execute_batch(product_worker, short_batch_worker, units)
        assert _strip_volatile(records) == _strip_volatile(
            [dict(u, status="ok", payload=product_worker(u), error=None) for u in units]
        )

    def test_batch_records_match_unit_records(self):
        units = [
            {"index": i, "unit_id": f"u{i}", "k": 3, "n": 7 + i, "samples": 1}
            for i in range(4)
        ]
        batched = execute_batch(product_worker, batched_product_worker, units)
        plain = execute_batch(product_worker, None, units)
        assert _strip_volatile(batched) == _strip_volatile(plain)


class TestE7BatchedWorker:
    def test_payloads_byte_identical_to_per_unit(self):
        units = [
            {"k": 5, "n": 12, "samples": 3, "seed": 11, "steps_factor": 10},
            {"k": 4, "n": 10, "samples": 3, "seed": 23, "steps_factor": 10},
        ]
        assert run_units_batched(units) == [run_unit(unit) for unit in units]
