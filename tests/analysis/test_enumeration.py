"""Tests for configuration enumeration and the symmetry census (E1 core)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.enumeration import (
    PAPER_FIGURE_COUNTS,
    census,
    count_configurations,
    enumerate_configurations,
)
from repro.core.configuration import Configuration
from repro.core.errors import InvalidConfigurationError


class TestEnumeration:
    def test_representatives_are_distinct_classes(self):
        reps = enumerate_configurations(9, 4)
        keys = [c.canonical_gaps() for c in reps]
        assert len(keys) == len(set(keys))

    def test_every_configuration_has_a_representative(self):
        reps = {c.canonical_gaps() for c in enumerate_configurations(7, 3)}
        import itertools

        for occupied in itertools.combinations(range(7), 3):
            cfg = Configuration.from_occupied(7, occupied)
            assert cfg.canonical_gaps() in reps

    def test_rigid_only_filter(self):
        reps = enumerate_configurations(9, 4, rigid_only=True)
        assert reps
        assert all(c.is_rigid for c in reps)

    def test_single_robot_single_class(self):
        assert count_configurations(8, 1) == 1

    def test_full_ring_single_class(self):
        assert count_configurations(8, 8) == 1

    def test_two_robots_classes_are_distances(self):
        # Classes of 2 robots on n nodes = floor(n/2) (one per distance).
        assert count_configurations(8, 2) == 4
        assert count_configurations(9, 2) == 4

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            enumerate_configurations(2, 1)
        with pytest.raises(InvalidConfigurationError):
            enumerate_configurations(6, 0)
        with pytest.raises(InvalidConfigurationError):
            enumerate_configurations(6, 7)

    @given(st.integers(min_value=3, max_value=11), st.data())
    @settings(max_examples=25, deadline=None)
    def test_complement_symmetry(self, n, data):
        """Necklaces with k beads equal necklaces with n - k beads."""
        k = data.draw(st.integers(min_value=1, max_value=n - 1))
        assert count_configurations(n, k) == count_configurations(n, n - k)


class TestPaperCensus:
    @pytest.mark.parametrize("k,n", sorted(PAPER_FIGURE_COUNTS))
    def test_counts_match_figures(self, k, n):
        figure, expected = PAPER_FIGURE_COUNTS[(k, n)]
        assert census(n, k).total == expected, figure

    def test_census_partitions_total(self):
        c = census(9, 4)
        assert c.total == c.rigid + c.symmetric_aperiodic + c.periodic

    def test_census_row(self):
        c = census(7, 4)
        assert c.as_row() == (4, 7, 4, 1, 3, 0)

    def test_rigid_counts_for_figures(self):
        """Rigid counts used by the constructive theorems' exhaustive checks."""
        assert census(7, 4).rigid == 1
        assert census(8, 4).rigid == 2
        assert census(8, 5).rigid == 2
