"""Equivalence tests for the direct necklace enumerator.

The old enumeration walked all C(n-1, k-1) placements containing node 0
and deduplicated them by canonical gap cycle; the new one generates one
dihedral-class representative directly.  These tests re-implement the
brute force locally and check both enumerations agree — classes *and*
order — for every (k, n) with n <= 12.
"""

from itertools import combinations

import pytest

from repro.analysis.enumeration import (
    census,
    count_configurations,
    enumerate_configurations,
    iter_configurations,
)
from repro.core.configuration import Configuration
from repro.core.cyclic import canonical_rotation, iter_fixed_sum_necklaces


def brute_force_class_keys(n, k):
    """Canonical gap cycles of all classes, via the pre-rewrite algorithm."""
    seen = {}
    for rest in combinations(range(1, n), k - 1):
        configuration = Configuration.from_occupied(n, (0,) + rest)
        key = configuration.canonical_gaps()
        if key not in seen:
            seen[key] = configuration
    return seen


class TestEnumeratorEquivalence:
    @pytest.mark.parametrize("n", range(3, 13))
    def test_matches_brute_force_for_all_k(self, n):
        for k in range(1, n + 1):
            brute = brute_force_class_keys(n, k)
            direct = enumerate_configurations(n, k)
            assert [c.canonical_gaps() for c in direct] == sorted(brute)

    @pytest.mark.parametrize("n", range(3, 13))
    def test_rigid_only_matches_brute_force(self, n):
        for k in range(1, n + 1):
            brute_rigid = sorted(
                key for key, c in brute_force_class_keys(n, k).items() if c.is_rigid
            )
            direct = enumerate_configurations(n, k, rigid_only=True)
            assert [c.canonical_gaps() for c in direct] == brute_rigid

    @pytest.mark.parametrize("n", range(3, 13))
    def test_count_matches_brute_force(self, n):
        for k in range(1, n + 1):
            assert count_configurations(n, k) == len(brute_force_class_keys(n, k))

    def test_census_matches_brute_force_classification(self):
        for n, k in ((9, 4), (10, 5), (12, 6)):
            measured = census(n, k)
            rigid = periodic = symmetric = 0
            for configuration in brute_force_class_keys(n, k).values():
                if configuration.is_periodic:
                    periodic += 1
                elif configuration.is_symmetric:
                    symmetric += 1
                else:
                    rigid += 1
            assert (measured.rigid, measured.symmetric_aperiodic, measured.periodic) == (
                rigid,
                symmetric,
                periodic,
            )


class TestRepresentativeInvariants:
    def test_representatives_are_dihedral_canonical(self):
        for configuration in iter_configurations(11, 5):
            assert configuration.gaps() == configuration.canonical_gaps()
            assert configuration.support[0] == 0

    def test_preseeded_gap_cache_matches_recomputation(self):
        for configuration in iter_configurations(10, 4):
            fresh = Configuration(configuration.counts)
            assert configuration.gap_cycle() == fresh.gap_cycle()

    def test_stream_is_lazy(self):
        stream = iter_configurations(12, 6)
        first = next(stream)
        assert first.k == 6 and first.n == 12

    def test_necklace_generator_yields_lex_min_rotations_in_order(self):
        out = list(iter_fixed_sum_necklaces(5, 7))
        assert out == sorted(out)
        assert len(set(out)) == len(out)
        for necklace in out:
            assert necklace == canonical_rotation(necklace)
