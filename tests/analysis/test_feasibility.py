"""Tests for the (k, n) feasibility characterization (Theorems 2-8)."""

import pytest

from repro.analysis.feasibility import (
    Feasibility,
    exploration_feasibility,
    feasibility_table,
    gathering_feasibility,
    searching_feasibility,
)
from repro.core.errors import InvalidConfigurationError


class TestSearchingCharacterization:
    @pytest.mark.parametrize("n", range(3, 10))
    def test_small_rings_infeasible(self, n):
        for k in range(1, n):
            assert searching_feasibility(n, k).verdict is Feasibility.INFEASIBLE

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_few_robots_infeasible(self, k):
        for n in (10, 15, 30):
            assert searching_feasibility(n, k).verdict is Feasibility.INFEASIBLE

    @pytest.mark.parametrize("n", [10, 14, 25])
    def test_nearly_full_rings_infeasible(self, n):
        assert searching_feasibility(n, n - 1).verdict is Feasibility.INFEASIBLE
        assert searching_feasibility(n, n - 2).verdict is Feasibility.INFEASIBLE

    def test_full_ring_trivially_feasible(self):
        assert searching_feasibility(7, 7).verdict is Feasibility.FEASIBLE

    def test_constructive_range_feasible(self):
        assert searching_feasibility(11, 6).verdict is Feasibility.FEASIBLE
        assert searching_feasibility(12, 9).verdict is Feasibility.FEASIBLE  # k = n - 3
        assert "Theorem 7" in searching_feasibility(12, 9).reference
        assert "Theorem 6" in searching_feasibility(12, 7).reference

    def test_open_cases(self):
        assert searching_feasibility(10, 5).verdict is Feasibility.OPEN
        assert searching_feasibility(12, 4).verdict is Feasibility.OPEN
        # (4, 9) is NOT open: it is covered by the n <= 9 impossibility.
        assert searching_feasibility(9, 4).verdict is Feasibility.INFEASIBLE

    def test_characterization_is_total_above_9(self):
        """Every cell with n >= 10 is classified, and only the stated cells are open."""
        for n in range(10, 25):
            for k in range(1, n + 1):
                verdict = searching_feasibility(n, k)
                if verdict.verdict is Feasibility.OPEN:
                    assert k == 4 or (k == 5 and n == 10)

    def test_validation(self):
        with pytest.raises(InvalidConfigurationError):
            searching_feasibility(2, 1)
        with pytest.raises(InvalidConfigurationError):
            searching_feasibility(10, 0)
        with pytest.raises(InvalidConfigurationError):
            searching_feasibility(10, 11)


class TestExplorationAndGathering:
    def test_exploration_constructive_range(self):
        assert exploration_feasibility(12, 7).verdict is Feasibility.FEASIBLE
        assert exploration_feasibility(12, 9).verdict is Feasibility.FEASIBLE

    def test_exploration_degenerate_cases(self):
        assert exploration_feasibility(8, 8).verdict is Feasibility.INFEASIBLE
        assert exploration_feasibility(8, 7).verdict is Feasibility.INFEASIBLE

    def test_exploration_open_elsewhere(self):
        assert exploration_feasibility(12, 3).verdict is Feasibility.OPEN

    def test_gathering_theorem8_range(self):
        assert gathering_feasibility(10, 5).verdict is Feasibility.FEASIBLE
        assert gathering_feasibility(10, 7).verdict is Feasibility.FEASIBLE

    def test_gathering_boundaries(self):
        assert gathering_feasibility(10, 2).verdict is Feasibility.INFEASIBLE
        assert gathering_feasibility(10, 8).verdict is Feasibility.UNDEFINED
        assert gathering_feasibility(10, 1).verdict is Feasibility.FEASIBLE


class TestTable:
    def test_table_covers_grid(self):
        rows = feasibility_table("searching", 12)
        assert len(rows) == sum(n for n in range(3, 13))

    def test_table_k_filter(self):
        rows = feasibility_table("searching", 12, min_n=10, ks=(5, 6))
        assert {cell.k for cell in rows} <= {5, 6}

    def test_table_unknown_task(self):
        with pytest.raises(ValueError):
            feasibility_table("painting", 10)

    def test_cell_as_row(self):
        cell = searching_feasibility(11, 6)
        assert cell.as_row() == (6, 11, "feasible", cell.reference)
