"""Tests for the adversary game solver and the metrics helpers."""

import pytest

from repro.algorithms.align import AlignAlgorithm
from repro.algorithms.ring_clearing import RingClearingAlgorithm
from repro.analysis.game import (
    GameVerdict,
    Option,
    SearchGameSolver,
    searching_game_verdict,
)
from repro.analysis.metrics import clearing_metrics, convergence_metrics, summarize
from repro.core.configuration import Configuration
from repro.core.errors import UnsupportedParametersError
from repro.simulator.engine import Simulator
from repro.tasks import ExplorationMonitor, SearchingMonitor
from repro.workloads.generators import rigid_configurations


class TestGameSolverSetup:
    def test_rejects_bad_parameters(self):
        with pytest.raises(UnsupportedParametersError):
            SearchGameSolver(6, 6)
        with pytest.raises(UnsupportedParametersError):
            SearchGameSolver(6, 0)

    def test_rejects_too_many_classes(self):
        with pytest.raises(UnsupportedParametersError):
            SearchGameSolver(12, 6, max_classes=4)

    def test_observation_classes_and_candidates(self):
        solver = SearchGameSolver(5, 2)
        assert len(solver.observation_classes) == 2  # distances 1 and 2
        assert solver.candidate_count() == 9

    def test_observation_class_is_unordered(self):
        cfg = Configuration.from_occupied(6, [0, 2])
        first, second = SearchGameSolver.observation_class(cfg, 0)
        assert first <= second


class TestGameBatchedExpansion:
    """The batched combo replay must be invisible in every observable."""

    CELLS = ((4, 1), (5, 2), (6, 2), (5, 3), (6, 3))

    def _sweep(self):
        return [searching_game_verdict(n, k) for n, k in self.CELLS]

    def test_batched_and_serial_paths_identical(self, monkeypatch):
        import repro.analysis.game as game

        monkeypatch.setattr(game, "_BATCH_MIN", 10**9)
        serial = self._sweep()
        monkeypatch.setattr(game, "_BATCH_MIN", 1)
        batched = self._sweep()
        for left, right in zip(serial, batched):
            assert left == right

    def test_cap_error_identical_on_both_paths(self, monkeypatch):
        import repro.analysis.game as game
        from repro.core.errors import SimulationLimitError

        messages = []
        for batch_min in (10**9, 1):
            monkeypatch.setattr(game, "_BATCH_MIN", batch_min)
            with pytest.raises(SimulationLimitError) as excinfo:
                searching_game_verdict(6, 3, max_states=10)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]

    def test_combo_tables_shared_across_candidates(self):
        solver = SearchGameSolver(6, 2)
        solver.solve()
        # Far fewer distinct tables than (states x candidates) expansions.
        assert 0 < len(solver._combo_tables) <= 200


class TestGameSolverVerdicts:
    """Computational counterparts of Theorems 2, 3 and the small cases of Theorem 5."""

    @pytest.mark.parametrize("n,k", [(4, 1), (5, 1), (6, 1)])
    def test_single_robot_impossible(self, n, k):
        assert searching_game_verdict(n, k).verdict is GameVerdict.IMPOSSIBLE

    @pytest.mark.parametrize("n,k", [(5, 2), (6, 2), (7, 2)])
    def test_two_robots_impossible(self, n, k):
        assert searching_game_verdict(n, k).verdict is GameVerdict.IMPOSSIBLE

    def test_three_robots_small_ring_impossible(self):
        assert searching_game_verdict(5, 3).verdict is GameVerdict.IMPOSSIBLE

    def test_result_counts_candidates(self):
        result = searching_game_verdict(5, 2)
        assert result.algorithms_checked == 9
        assert result.witness is None

    def test_specific_candidate_is_defeated(self):
        """The 'always move towards the other robot's far side' candidate loses."""
        solver = SearchGameSolver(6, 2)
        assignment = {cls: Option.TOWARD_MAX for cls in solver.observation_classes}
        start = Configuration.from_occupied(6, [0, 1])
        assert solver._adversary_wins(start, assignment)

    def test_idle_candidate_is_defeated(self):
        solver = SearchGameSolver(6, 2)
        assignment = {cls: Option.IDLE for cls in solver.observation_classes}
        start = Configuration.from_occupied(6, [0, 1])
        assert solver._adversary_wins(start, assignment)


class TestMetrics:
    def test_summarize_empty(self):
        assert summarize([]) == {"mean": 0.0, "min": 0.0, "max": 0.0, "stdev": 0.0}

    def test_summarize_values(self):
        stats = summarize([2, 4, 6])
        assert stats["mean"] == 4
        assert stats["min"] == 2
        assert stats["max"] == 6

    def test_convergence_metrics_from_align_run(self):
        cfg = rigid_configurations(11, 5)[0]
        engine = Simulator(AlignAlgorithm(), cfg)
        trace = engine.run_until(lambda sim: sim.configuration.is_c_star(), 2000)
        metrics = convergence_metrics(trace)
        assert metrics.reached
        assert metrics.moves == trace.total_moves
        assert sum(metrics.moves_per_robot.values()) == metrics.moves

    def test_convergence_metrics_with_goal_predicate(self):
        cfg = rigid_configurations(11, 5)[0]
        engine = Simulator(AlignAlgorithm(), cfg)
        engine.run(300)
        metrics = convergence_metrics(engine.trace, goal=lambda c: c.is_c_star())
        assert metrics.reached
        assert metrics.moves <= engine.trace.total_moves

    def test_convergence_metrics_goal_not_reached(self):
        cfg = rigid_configurations(11, 5)[0]
        engine = Simulator(AlignAlgorithm(), cfg)
        engine.run(3)
        metrics = convergence_metrics(engine.trace, goal=lambda c: c.num_occupied == 1)
        assert not metrics.reached

    def test_clearing_metrics(self):
        cfg = rigid_configurations(12, 6)[0]
        searching = SearchingMonitor()
        exploration = ExplorationMonitor()
        engine = Simulator(RingClearingAlgorithm(), cfg, monitors=[searching, exploration])
        engine.run(2500)
        metrics = clearing_metrics(searching, exploration, engine.trace)
        assert metrics.min_clearings > 0
        assert metrics.mean_clearings >= metrics.min_clearings
        assert metrics.all_clear_count >= 2
        assert metrics.moves_to_full_clear is not None and metrics.moves_to_full_clear > 0
        assert metrics.cover_time >= 0
        assert metrics.min_visits >= 1
