"""Tests of Algorithm Align: unit, property and exhaustive Theorem 1 checks."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.align import (
    CS_VIEW,
    SPECIAL_SYMMETRIC_VIEW,
    AlignAlgorithm,
    align_rule,
    plan_align,
)
from repro.core.configuration import Configuration
from repro.core.errors import AlgorithmPreconditionError
from repro.scheduler import AsynchronousScheduler, SemiSynchronousScheduler
from repro.simulator.engine import Simulator


def rigid_configurations(n, k):
    """All rigid exclusive configurations with k robots on n nodes, up to isomorphism."""
    seen = set()
    result = []
    for occupied in itertools.combinations(range(n), k):
        cfg = Configuration.from_occupied(n, occupied)
        key = cfg.canonical_gaps()
        if key in seen:
            continue
        seen.add(key)
        if cfg.is_rigid:
            result.append(cfg)
    return result


@st.composite
def random_rigid_configuration(draw, min_n=8, max_n=24):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    k = draw(st.integers(min_value=3, max_value=n - 3))
    occupied = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k, unique=True)
    )
    cfg = Configuration.from_occupied(n, occupied)
    if not cfg.is_rigid:
        # Nudge towards rigid configurations by rejecting; hypothesis will retry.
        from hypothesis import assume

        assume(False)
    return cfg


class TestAlignRule:
    def test_idle_on_c_star(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 3, 5])
        decision = align_rule(cfg)
        assert decision.is_idle
        assert plan_align(cfg) == {}

    def test_reduction0_applied_when_q0_positive(self):
        cfg = Configuration.from_gaps((1, 2, 3))  # supermin view (1, 2, 3)
        decision = align_rule(cfg)
        assert decision.rule == "reduction0"
        assert decision.resulting_view == (0, 2, 4)

    def test_reduction1_applied_when_safe(self):
        cfg = Configuration.from_gaps((0, 2, 1, 2, 2))
        decision = align_rule(cfg)
        assert decision.rule == "reduction1"

    def test_moves_are_adjacent(self):
        cfg = Configuration.from_gaps((0, 2, 1, 2, 2))
        decision = align_rule(cfg)
        assert cfg.ring.are_adjacent(decision.mover, decision.target)
        assert not cfg.is_occupied(decision.target)

    def test_cs_configuration_uses_reduction1_despite_symmetry(self):
        cs = Configuration.from_gaps(CS_VIEW)
        decision = align_rule(cs)
        assert decision.rule == "reduction1"
        after = cs.move_robot(decision.mover, decision.target)
        assert after.supermin_view() == SPECIAL_SYMMETRIC_VIEW
        assert after.is_symmetric

    def test_special_symmetric_configuration_handled(self):
        cfg = Configuration.from_gaps(SPECIAL_SYMMETRIC_VIEW)
        assert not cfg.is_rigid
        decision = align_rule(cfg)
        after = cfg.move_robot(decision.mover, decision.target)
        assert after.is_c_star()

    def test_rejects_symmetric_configuration(self):
        cfg = Configuration.from_occupied(8, [0, 2, 4, 6])
        with pytest.raises(AlgorithmPreconditionError):
            align_rule(cfg)

    def test_rejects_tiny_configurations(self):
        cfg = Configuration.from_occupied(8, [0, 3])
        with pytest.raises(AlgorithmPreconditionError):
            align_rule(cfg)

    def test_lemma2_reduction0_preserves_rigidity(self):
        """Lemma 2: reduction0 from a rigid configuration stays rigid and decreases the supermin."""
        for n, k in ((11, 4), (13, 5)):
            for cfg in rigid_configurations(n, k):
                if cfg.supermin_view()[0] == 0:
                    continue
                decision = align_rule(cfg)
                after = cfg.move_robot(decision.mover, decision.target)
                assert after.is_rigid
                assert after.supermin_view() < cfg.supermin_view()


class TestAlignInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_rigid_configuration())
    def test_single_mover_and_valid_move(self, cfg):
        plan = plan_align(cfg)
        if cfg.is_c_star():
            assert plan == {}
            return
        assert len(plan) == 1
        (mover, target), = plan.items()
        assert cfg.is_occupied(mover)
        assert not cfg.is_occupied(target)
        assert cfg.ring.are_adjacent(mover, target)

    @settings(max_examples=60, deadline=None)
    @given(random_rigid_configuration())
    def test_planner_is_equivariant_under_rotation(self, cfg):
        plan = plan_align(cfg)
        offset = 3
        rotated_plan = plan_align(cfg.rotated(offset))
        expected = {(m + offset) % cfg.n: (t + offset) % cfg.n for m, t in plan.items()}
        assert rotated_plan == expected

    @settings(max_examples=60, deadline=None)
    @given(random_rigid_configuration())
    def test_planner_is_equivariant_under_reflection(self, cfg):
        plan = plan_align(cfg)
        reflected_plan = plan_align(cfg.reflected(0))
        expected = {(-m) % cfg.n: (-t) % cfg.n for m, t in plan.items()}
        assert reflected_plan == expected

    @settings(max_examples=40, deadline=None)
    @given(random_rigid_configuration())
    def test_next_configuration_stays_in_domain(self, cfg):
        """Theorem 1: every configuration on the Align path is rigid or the special one."""
        plan = plan_align(cfg)
        if not plan:
            return
        (mover, target), = plan.items()
        after = cfg.move_robot(mover, target)
        assert after.is_exclusive
        assert after.is_rigid or after.supermin_view() == SPECIAL_SYMMETRIC_VIEW


def run_align_to_c_star(cfg, scheduler=None, seed=0):
    engine = Simulator(AlignAlgorithm(), cfg, scheduler=scheduler, presentation_seed=seed)
    budget = 20 * cfg.n * cfg.k + 100
    trace = engine.run_until(lambda sim: sim.configuration.is_c_star(), budget)
    return trace


class TestTheorem1Exhaustive:
    """Theorem 1 verified exhaustively on small rings."""

    @pytest.mark.parametrize("n", [8, 9, 10, 11])
    def test_align_reaches_c_star_from_every_rigid_configuration(self, n):
        for k in range(3, n - 2):
            for cfg in rigid_configurations(n, k):
                trace = run_align_to_c_star(cfg)
                final = trace.final_configuration
                assert final.is_c_star()
                assert not trace.had_collision
                assert trace.max_simultaneous_moves() <= 1
                for intermediate in trace.configurations():
                    assert intermediate.is_exclusive
                    assert (
                        intermediate.is_rigid
                        or intermediate.supermin_view() == SPECIAL_SYMMETRIC_VIEW
                    )

    def test_align_moves_bounded(self):
        """Align converges within O(n * k) moves on the tested instances."""
        n = 12
        for k in range(3, n - 2):
            for cfg in rigid_configurations(n, k):
                trace = run_align_to_c_star(cfg)
                assert trace.total_moves <= 2 * n * k

    def test_align_from_cs_exact_path(self):
        cs = Configuration.from_gaps(CS_VIEW)
        trace = run_align_to_c_star(cs)
        views = [c.supermin_view() for c in trace.configurations() if c != trace.configurations()[0]]
        assert SPECIAL_SYMMETRIC_VIEW in views
        assert trace.final_configuration.supermin_view() == (0, 0, 1, 3)


class TestAlignUnderAdversarialSchedulers:
    """Only one robot is ever enabled, so asynchrony cannot hurt (Theorem 1)."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_semi_synchronous(self, seed):
        cfg = Configuration.from_occupied(13, [0, 1, 4, 6, 10])
        assert cfg.is_rigid
        trace = run_align_to_c_star(cfg, scheduler=SemiSynchronousScheduler(seed=seed), seed=seed)
        assert trace.final_configuration.is_c_star()
        assert not trace.had_collision

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fully_asynchronous(self, seed):
        cfg = Configuration.from_occupied(13, [0, 1, 4, 6, 10])
        trace = run_align_to_c_star(cfg, scheduler=AsynchronousScheduler(seed=seed), seed=seed)
        assert trace.final_configuration.is_c_star()
        assert not trace.had_collision
        assert trace.max_simultaneous_moves() == 1
