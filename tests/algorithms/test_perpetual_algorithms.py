"""Theorem 6 and Theorem 7: Ring Clearing and NminusThree, machine-checked."""

import itertools

import pytest

from repro.algorithms.nminusthree import (
    NminusThreeAlgorithm,
    final_configurations,
    nminusthree_supported,
    plan_nminusthree,
)
from repro.algorithms.ring_clearing import (
    RingClearingAlgorithm,
    plan_ring_clearing,
    ring_clearing_supported,
)
from repro.core.configuration import Configuration
from repro.core.errors import UnsupportedParametersError
from repro.scheduler import AsynchronousScheduler
from repro.simulator.engine import Simulator
from repro.tasks import ExplorationMonitor, SearchingMonitor


def rigid_configurations(n, k, limit=None):
    seen = set()
    result = []
    for occupied in itertools.combinations(range(n), k):
        cfg = Configuration.from_occupied(n, occupied)
        key = cfg.canonical_gaps()
        if key in seen:
            continue
        seen.add(key)
        if cfg.is_rigid:
            result.append(cfg)
            if limit is not None and len(result) >= limit:
                break
    return result


def verify_perpetual(algorithm, cfg, steps, min_clear=2, min_visits=2, scheduler=None, seed=0):
    searching = SearchingMonitor()
    exploration = ExplorationMonitor()
    engine = Simulator(
        algorithm,
        cfg,
        scheduler=scheduler,
        monitors=[searching, exploration],
        presentation_seed=seed,
    )
    engine.run(steps)
    assert not engine.trace.had_collision
    assert engine.trace.max_simultaneous_moves() == 1
    assert searching.every_edge_cleared(min_clear), searching.clearing_counts()
    assert exploration.all_robots_covered_ring(min_visits), exploration.visit_counts
    return searching, exploration


class TestRingClearingSupport:
    @pytest.mark.parametrize(
        "n,k,expected",
        [
            (10, 5, False),  # open case
            (10, 6, True),
            (12, 5, True),
            (12, 8, True),
            (12, 9, False),  # k = n - 3 handled by NminusThree
            (9, 5, False),
            (12, 4, False),
            (20, 16, True),
        ],
    )
    def test_supported_range(self, n, k, expected):
        assert ring_clearing_supported(n, k) is expected

    def test_unsupported_raises(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 4, 6])
        with pytest.raises(UnsupportedParametersError):
            plan_ring_clearing(cfg)

    def test_plan_single_mover(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9, 10])
        plan = plan_ring_clearing(cfg)
        assert len(plan) == 1
        (mover, target), = plan.items()
        assert cfg.is_occupied(mover)
        assert not cfg.is_occupied(target)


class TestTheorem6:
    """Ring Clearing perpetually searches and explores (exhaustive small cases)."""

    @pytest.mark.parametrize("n,k", [(11, 5), (11, 6), (12, 6), (12, 7), (13, 8)])
    def test_perpetual_search_and_exploration(self, n, k):
        assert ring_clearing_supported(n, k)
        # A couple of representative rigid starting configurations per (n, k).
        for cfg in rigid_configurations(n, k, limit=4):
            steps = 40 * n * k
            verify_perpetual(RingClearingAlgorithm(), cfg, steps)

    def test_exhaustive_single_pair(self):
        n, k = 11, 6
        for cfg in rigid_configurations(n, k):
            steps = 30 * n * k
            verify_perpetual(RingClearingAlgorithm(), cfg, steps, min_clear=1, min_visits=1)

    def test_whole_ring_simultaneously_clear_infinitely_often(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9, 10])
        searching = SearchingMonitor()
        engine = Simulator(RingClearingAlgorithm(), cfg, monitors=[searching])
        engine.run(4000)
        assert len(searching.all_clear_steps) >= 3

    def test_phase_two_cycles_up_to_symmetry(self):
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 4, 6])  # C* in A-f
        engine = Simulator(RingClearingAlgorithm(), cfg)
        engine.run(2000)
        assert engine.trace.configuration_period(up_to_symmetry=True) is not None

    @pytest.mark.parametrize("seed", [1, 2])
    def test_asynchronous_scheduler(self, seed):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9, 10])
        verify_perpetual(
            RingClearingAlgorithm(),
            cfg,
            steps=6000,
            scheduler=AsynchronousScheduler(seed=seed),
            seed=seed,
        )


class TestNminusThreeSupport:
    @pytest.mark.parametrize(
        "n,k,expected",
        [(10, 7, True), (12, 9, True), (9, 6, False), (12, 8, False), (20, 17, True)],
    )
    def test_supported_range(self, n, k, expected):
        assert nminusthree_supported(n, k) is expected

    def test_unsupported_raises(self):
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 5, 6, 7, 9])
        with pytest.raises(UnsupportedParametersError):
            plan_nminusthree(cfg)

    def test_final_configurations(self):
        assert final_configurations(9) == ((0, 2, 7), (0, 3, 6), (1, 2, 6))

    def test_phase_two_cycle_of_block_sizes(self):
        """R2.1 -> R2.2 -> R2.3 cycles through the three final configurations (Theorem 7)."""
        n, k = 12, 9
        cfg = Configuration.from_occupied(n, [0, 1, 2, 3, 4, 5, 6, 9, 10])
        from repro.algorithms.classification import three_empty_structure

        assert three_empty_structure(cfg).sorted_sizes == (0, 2, 7)
        sizes_seen = []
        for _ in range(12):
            sizes_seen.append(three_empty_structure(cfg).sorted_sizes)
            plan = plan_nminusthree(cfg)
            (mover, target), = plan.items()
            cfg = cfg.move_robot(mover, target)
        assert set(sizes_seen) == set(final_configurations(k))


class TestTheorem7:
    """NminusThree perpetually searches and explores for k = n - 3, n >= 10."""

    @pytest.mark.parametrize("n", [10, 11, 12, 13])
    def test_perpetual_search_and_exploration(self, n):
        k = n - 3
        for cfg in rigid_configurations(n, k, limit=4):
            steps = 50 * n * k
            verify_perpetual(NminusThreeAlgorithm(), cfg, steps)

    def test_exhaustive_n_11(self):
        n, k = 11, 8
        for cfg in rigid_configurations(n, k):
            steps = 40 * n * k
            verify_perpetual(NminusThreeAlgorithm(), cfg, steps, min_clear=1, min_visits=1)

    def test_lemma9_phase_one_reaches_final_configuration(self):
        from repro.algorithms.classification import three_empty_structure

        n, k = 14, 11
        for cfg in rigid_configurations(n, k, limit=10):
            engine = Simulator(NminusThreeAlgorithm(), cfg)
            finals = set(final_configurations(k))
            engine.run_until(
                lambda sim: three_empty_structure(sim.configuration).sorted_sizes in finals,
                10 * n * k,
            )
            assert three_empty_structure(engine.configuration).sorted_sizes in finals
            # Every intermediate configuration stays exclusive and collision-free.
            assert not engine.trace.had_collision
