"""Unit and property tests for the reduction rules of Align."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import reductions
from repro.core import views as view_utils


@st.composite
def supermin_views(draw, min_k=3, max_k=9, max_gap=5):
    """Random interval sequences normalised to be supermin views."""
    k = draw(st.integers(min_value=min_k, max_value=max_k))
    gaps = draw(st.lists(st.integers(min_value=0, max_value=max_gap), min_size=k, max_size=k))
    # At least one positive gap so the configuration is not fully occupied.
    if sum(gaps) == 0:
        gaps[-1] = draw(st.integers(min_value=1, max_value=max_gap))
    return view_utils.supermin_view(tuple(gaps))


class TestPositiveIndices:
    def test_first_positive(self):
        assert reductions.first_positive_index((0, 0, 2, 1)) == 2

    def test_second_positive(self):
        assert reductions.second_positive_index((0, 0, 2, 1)) == 3

    def test_first_positive_requires_positive(self):
        with pytest.raises(ValueError):
            reductions.first_positive_index((0, 0, 0))

    def test_second_positive_requires_two(self):
        with pytest.raises(ValueError):
            reductions.second_positive_index((0, 0, 5))


class TestIndividualRules:
    def test_reduction0(self):
        assert reductions.reduction0((2, 0, 1, 3)) == (1, 0, 1, 4)

    def test_reduction0_requires_positive_q0(self):
        with pytest.raises(ValueError):
            reductions.reduction0((0, 1, 3))

    def test_reduction1(self):
        assert reductions.reduction1((0, 0, 2, 4)) == (0, 0, 1, 5)

    def test_reduction1_on_paper_example(self):
        # From Cs = (0,1,1,2), reduction1 gives (0,0,2,2) (paper, Section 3.1).
        assert reductions.reduction1((0, 1, 1, 2)) == (0, 0, 2, 2)
        # And from (0,0,2,2) it gives (0,0,1,3) = C* for k=4, n=8.
        assert reductions.reduction1((0, 0, 2, 2)) == (0, 0, 1, 3)

    def test_reduction2(self):
        assert reductions.reduction2((0, 1, 0, 2, 3)) == (0, 1, 0, 1, 4)

    def test_reduction2_wraps_cyclically(self):
        # Second positive interval is the last one: its successor is q0.
        assert reductions.reduction2((0, 1, 2)) == (1, 1, 1)

    def test_reduction_minus1(self):
        assert reductions.reduction_minus1((0, 1, 1, 2)) == (0, 1, 2, 1)

    def test_reduction_minus1_requires_positive_last(self):
        with pytest.raises(ValueError):
            reductions.reduction_minus1((1, 2, 0))

    def test_validation_rejects_short_views(self):
        with pytest.raises(ValueError):
            reductions.reduction0((3,))

    def test_validation_rejects_negative(self):
        with pytest.raises(ValueError):
            reductions.reduction1((0, -1, 2))


class TestApplyAndMover:
    def test_apply_dispatch(self):
        view = (0, 0, 1, 3)
        assert reductions.apply_reduction(view, reductions.REDUCTION_1) == reductions.reduction1(view)
        assert reductions.apply_reduction((1, 0, 1, 2), reductions.REDUCTION_0) == (0, 0, 1, 3)
        assert reductions.apply_reduction(view, reductions.REDUCTION_MINUS_1) == (0, 0, 2, 2)

    def test_apply_unknown_rule(self):
        with pytest.raises(ValueError):
            reductions.apply_reduction((0, 1, 2), "reduction42")

    def test_mover_indices(self):
        view = (0, 0, 1, 3)
        assert reductions.mover_index(view, reductions.REDUCTION_0) == (0, +1)
        assert reductions.mover_index(view, reductions.REDUCTION_1) == (3, -1)
        assert reductions.mover_index(view, reductions.REDUCTION_MINUS_1) == (3, +1)
        assert reductions.mover_index((0, 1, 0, 2), reductions.REDUCTION_2) == (0, -1)

    def test_mover_unknown_rule(self):
        with pytest.raises(ValueError):
            reductions.mover_index((0, 1, 2), "nope")


class TestProperties:
    @given(supermin_views())
    def test_reductions_preserve_total_emptiness(self, view):
        """Every rule moves one robot: the number of empty nodes is conserved."""
        for rule in (
            reductions.REDUCTION_0,
            reductions.REDUCTION_1,
            reductions.REDUCTION_2,
            reductions.REDUCTION_MINUS_1,
        ):
            try:
                new = reductions.apply_reduction(view, rule)
            except ValueError:
                continue
            assert sum(new) == sum(view)
            assert len(new) == len(view)

    @given(supermin_views())
    def test_reduction0_and_1_and_2_do_not_increase_view(self, view):
        """Lexicographic decrease of the described sequence (paper, Theorem 1)."""
        if view[0] > 0:
            assert reductions.reduction0(view) < view
        else:
            if reductions.first_positive_index(view) != len(view) - 1:
                assert reductions.reduction1(view) < view
            try:
                new2 = reductions.reduction2(view)
            except ValueError:
                return
            if reductions.second_positive_index(view) != len(view) - 1:
                assert new2 < view

    @given(supermin_views())
    def test_mover_is_consistent_with_rule(self, view):
        for rule in (reductions.REDUCTION_0, reductions.REDUCTION_1, reductions.REDUCTION_MINUS_1):
            try:
                reductions.apply_reduction(view, rule)
            except ValueError:
                continue
            index, direction = reductions.mover_index(view, rule)
            assert 0 <= index < len(view)
            assert direction in (-1, +1)
