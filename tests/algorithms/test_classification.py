"""Tests for the A-class and (A,B,C) structural classifications."""

import pytest

from repro.algorithms.classification import (
    AClass,
    classify_a,
    three_empty_structure,
)
from repro.core.configuration import Configuration
from repro.core.errors import AlgorithmPreconditionError, InvalidConfigurationError


def cfg_from_blocks(n, blocks):
    """Build a configuration from (start, length) occupied runs."""
    occupied = []
    for start, length in blocks:
        occupied.extend((start + i) % n for i in range(length))
    return Configuration.from_occupied(n, occupied)


class TestAClasses:
    def test_a_a(self):
        # Block of k-2=4 at 0..3, one empty, pair at 5,6 and a big gap. n=12, k=6.
        cfg = cfg_from_blocks(12, [(0, 4), (5, 2)])
        result = classify_a(cfg)
        assert result is not None
        assert result.label == AClass.A_A
        assert result.mover == 6
        assert result.target == 7

    def test_a_a_mirror(self):
        # Pair at {0,1}, one empty node, block at {3..6}: the far pair robot
        # (node 0) moves away from the block, into the big gap.
        cfg = cfg_from_blocks(12, [(0, 2), (3, 4)])
        result = classify_a(cfg)
        assert result.label == AClass.A_A
        assert result.mover == 0
        assert result.target == 11

    def test_a_b(self):
        # Block 0..3, r' at 5, isolated robot at 7. n=12, k=6.
        cfg = cfg_from_blocks(12, [(0, 4), (5, 1), (7, 1)])
        result = classify_a(cfg)
        assert result.label == AClass.A_B
        assert result.mover == 7
        assert result.target == 8

    def test_a_c(self):
        # Isolated robot reaches distance 2 on the other side: block 0..3,
        # r'=5, r=9 (gap 10, 11 to the block). n=12, k=6.
        cfg = cfg_from_blocks(12, [(0, 4), (5, 1), (9, 1)])
        result = classify_a(cfg)
        assert result.label == AClass.A_C
        assert result.mover == 3
        assert result.target == 4

    def test_a_d(self):
        # S = 0..2 (k-3), pair at 4,5, single robot at 9. n=12, k=6.
        cfg = cfg_from_blocks(12, [(0, 3), (4, 2), (9, 1)])
        result = classify_a(cfg)
        assert result.label == AClass.A_D
        assert result.mover == 9
        assert result.target == 10

    def test_a_e(self):
        cfg = cfg_from_blocks(12, [(0, 3), (4, 2), (10, 1)])
        result = classify_a(cfg)
        assert result.label == AClass.A_E
        assert result.mover == 10
        assert result.target == 11

    def test_a_f(self):
        # C* itself: block of k-1 and a single robot at distance 2.
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 4, 6])
        assert cfg.is_c_star()
        result = classify_a(cfg)
        assert result.label == AClass.A_F
        assert result.mover == 4
        assert result.target == 5

    def test_a_f_general_asymmetric(self):
        # Block of k-1 = 5 and a single robot with gaps 2 and 5.
        cfg = Configuration.from_occupied(13, [0, 1, 2, 3, 4, 7])
        result = classify_a(cfg)
        assert result.label == AClass.A_F
        assert result.mover == 4
        assert result.target == 5

    def test_a_f_symmetric_rejected(self):
        # Equal gaps on both sides of the single robot: not in A-f.
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 4, 8])
        assert classify_a(cfg) is None

    def test_not_classified_generic_configuration(self):
        cfg = Configuration.from_occupied(12, [0, 2, 5, 6, 9, 10])
        assert classify_a(cfg) is None

    def test_small_k_not_classified(self):
        cfg = Configuration.from_occupied(12, [0, 1, 2, 4])
        assert classify_a(cfg) is None

    def test_non_exclusive_not_classified(self):
        cfg = Configuration.from_positions(12, [0, 0, 1, 2, 3, 5, 6])
        assert classify_a(cfg) is None

    def test_ambiguous_5_10_a_d_not_classified(self):
        # For (k, n) = (5, 10) the A-d configuration is symmetric and the
        # mover cannot be identified: the classifier must refuse.
        cfg = cfg_from_blocks(10, [(0, 2), (3, 2), (7, 1)])
        assert cfg.is_symmetric
        assert classify_a(cfg) is None

    def test_cycle_classes_for_larger_ring(self):
        # Walk the documented cycle A-a -> A-b -> ... -> A-e -> A-a manually.
        n, k = 14, 6
        cfg = cfg_from_blocks(n, [(0, 4), (5, 2)])
        labels = []
        for _ in range(3 * n):
            result = classify_a(cfg)
            assert result is not None
            labels.append(result.label)
            cfg = cfg.move_robot(result.mover, result.target)
        assert set(labels) == {
            AClass.A_A,
            AClass.A_B,
            AClass.A_C,
            AClass.A_D,
            AClass.A_E,
        }


class TestThreeEmptyStructure:
    def test_structure_and_sizes(self):
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 5, 6, 7, 9, 10])
        structure = three_empty_structure(cfg)
        assert structure.empties == (4, 8, 11)
        assert sorted(structure.sizes) == [2, 3, 4]
        assert structure.sorted_sizes == (2, 3, 4)

    def test_zero_block(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 3, 4, 5, 7])
        structure = three_empty_structure(cfg)
        assert 0 in structure.sizes
        assert sum(structure.sizes) == 7

    def test_requires_three_empties(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2])
        with pytest.raises(InvalidConfigurationError):
            three_empty_structure(cfg)

    def test_requires_exclusive(self):
        cfg = Configuration.from_positions(10, [0, 0, 1, 2, 3, 4, 5, 7])
        with pytest.raises(InvalidConfigurationError):
            three_empty_structure(cfg)

    def test_slot_with_size_unique(self):
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 5, 6, 7, 9, 10])
        structure = three_empty_structure(cfg)
        idx = structure.slot_with_size(4)
        assert structure.sizes[idx] == 4

    def test_slot_with_size_ambiguous(self):
        cfg = Configuration.from_occupied(11, [0, 1, 2, 4, 5, 6, 8, 9])
        structure = three_empty_structure(cfg)
        with pytest.raises(AlgorithmPreconditionError):
            structure.slot_with_size(3)

    def test_shared_empty_and_border_robot(self):
        cfg = Configuration.from_occupied(12, [0, 1, 2, 3, 5, 6, 7, 9, 10])
        structure = three_empty_structure(cfg)
        big = structure.slot_with_size(4)
        mid = structure.slot_with_size(3)
        shared = structure.shared_empty(big, mid)
        assert shared in structure.empties
        border = structure.border_robot(big, mid)
        assert cfg.ring.are_adjacent(border, shared)

    def test_border_robot_requires_nonempty_slot(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 3, 4, 5, 7])
        structure = three_empty_structure(cfg)
        empty_slot = structure.slot_with_size(0)
        other = (empty_slot + 1) % 3
        with pytest.raises(AlgorithmPreconditionError):
            structure.border_robot(empty_slot, other)
