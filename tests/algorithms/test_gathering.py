"""Theorem 8: the Gathering algorithm with local multiplicity detection."""

import itertools

import pytest

from repro.algorithms.align import AlignAlgorithm
from repro.algorithms.baselines import GreedyGatherBaseline
from repro.algorithms.gathering import (
    GatheringAlgorithm,
    gathering_supported,
    plan_gathering_support,
)
from repro.core.configuration import Configuration
from repro.core.errors import AlgorithmPreconditionError
from repro.scheduler import AsynchronousScheduler, SemiSynchronousScheduler
from repro.simulator.engine import Simulator
from repro.simulator.runner import run_gathering
from repro.tasks import GatheringMonitor


def rigid_configurations(n, k, limit=None):
    seen = set()
    result = []
    for occupied in itertools.combinations(range(n), k):
        cfg = Configuration.from_occupied(n, occupied)
        key = cfg.canonical_gaps()
        if key in seen:
            continue
        seen.add(key)
        if cfg.is_rigid:
            result.append(cfg)
            if limit is not None and len(result) >= limit:
                break
    return result


class TestSupport:
    @pytest.mark.parametrize(
        "n,k,expected",
        [(10, 3, True), (10, 7, True), (10, 8, False), (10, 2, False), (6, 3, True), (5, 3, False)],
    )
    def test_supported_range(self, n, k, expected):
        assert gathering_supported(n, k) is expected


class TestSupportLevelPlan:
    def test_contraction_on_c_star(self):
        cfg = Configuration.from_occupied(10, [0, 1, 2, 3, 5])
        plan = plan_gathering_support(cfg)
        assert plan == {0: 1}

    def test_contraction_on_c_star_type_with_multiplicity(self):
        cfg = Configuration.from_positions(10, [1, 1, 2, 3, 5])
        plan = plan_gathering_support(cfg)
        assert plan == {1: 2}

    def test_align_outside_c_star_type(self):
        cfg = Configuration.from_occupied(10, [0, 1, 3, 6])
        plan = plan_gathering_support(cfg)
        assert len(plan) == 1

    def test_two_nodes_requires_snapshot(self):
        cfg = Configuration.from_positions(10, [0, 0, 0, 2])
        with pytest.raises(AlgorithmPreconditionError):
            plan_gathering_support(cfg)


class TestTheorem8Exhaustive:
    @pytest.mark.parametrize("n", [8, 9, 10, 11])
    def test_gathering_from_every_rigid_configuration(self, n):
        for k in range(3, n - 2):
            for cfg in rigid_configurations(n, k):
                monitor = GatheringMonitor()
                trace, engine = run_gathering(GatheringAlgorithm(), cfg, monitors=[monitor])
                assert monitor.gathering_achieved
                final = trace.final_configuration
                assert final.num_occupied == 1
                assert final.k == k
                # Once gathered, every robot stays put.
                engine.run(3 * k)
                assert engine.configuration.num_occupied == 1

    def test_gathering_moves_bounded(self):
        n = 12
        for k in range(3, n - 2):
            for cfg in rigid_configurations(n, k, limit=6):
                trace, _ = run_gathering(GatheringAlgorithm(), cfg)
                assert trace.total_moves <= 3 * n * k

    def test_multiplicity_only_appears_in_contraction_phase(self):
        cfg = Configuration.from_occupied(13, [0, 1, 4, 6, 10])
        monitor = GatheringMonitor()
        trace, _ = run_gathering(GatheringAlgorithm(), cfg, monitors=[monitor])
        first_c_star = trace.first_step_where(lambda c: c.is_c_star_type() and not c.is_exclusive)
        for event in trace.events:
            if event.step < (first_c_star or 0):
                assert event.configuration_after.is_exclusive or event.configuration_after.is_c_star_type()


class TestGatheringUnderAdversarialSchedulers:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_semi_synchronous(self, seed):
        cfg = Configuration.from_occupied(12, [0, 1, 4, 6, 9])
        assert cfg.is_rigid
        trace, _ = run_gathering(
            GatheringAlgorithm(),
            cfg,
            scheduler=SemiSynchronousScheduler(seed=seed),
            max_steps=20000,
        )
        assert trace.final_configuration.num_occupied == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_fully_asynchronous(self, seed):
        cfg = Configuration.from_occupied(12, [0, 1, 4, 6, 9])
        trace, _ = run_gathering(
            GatheringAlgorithm(),
            cfg,
            scheduler=AsynchronousScheduler(seed=seed),
            max_steps=30000,
        )
        assert trace.final_configuration.num_occupied == 1


class TestBaselineComparison:
    def test_greedy_baseline_fails_where_gathering_succeeds(self):
        """The strawman rule does not gather from every rigid configuration."""
        failures = 0
        successes = 0
        for cfg in rigid_configurations(10, 4):
            engine = Simulator(
                GreedyGatherBaseline(),
                cfg,
                exclusive=False,
                multiplicity_detection=True,
                presentation_seed=0,
            )
            engine.run(600)
            if engine.configuration.num_occupied == 1:
                successes += 1
            else:
                failures += 1
        assert failures > 0

    def test_align_algorithm_alone_does_not_gather(self):
        cfg = Configuration.from_occupied(10, [0, 1, 3, 6])
        engine = Simulator(AlignAlgorithm(), cfg)
        engine.run(400)
        assert engine.configuration.num_occupied == 4
